package incident

import (
	"bytes"
	"strings"
	"testing"
)

// round is one fleet round of the synthetic 32-unit scenario.
type round struct {
	tick   int
	events []Event
}

func testConfig() Config {
	return Config{ProximityTicks: 16, CloseAfter: 30, MaxLag: 16, MaxHistory: 64}
}

// correlatedScenario builds the deterministic 32-unit verdict stream the
// acceptance criteria pin on: a correlated fault where unit 0 deviates on
// CPU Utilization (KPI 2) at tick 100 and replicas 1-5 follow on Real
// Capacity (KPI 12) four ticks later, all on db 2, plus one unrelated
// incident on unit 20 far away in time. Rounds fire every 4 ticks.
func correlatedScenario() []round {
	byTick := map[int][]Event{
		// Unit 0 leads on KPI 2: windows [100,120), [120,140), [140,160).
		120: {{Unit: 0, DB: 2, KPIs: KPISet(0).With(2), Start: 100, End: 120}},
		140: {{Unit: 0, DB: 2, KPIs: KPISet(0).With(2), Start: 120, End: 140}},
		160: {{Unit: 0, DB: 2, KPIs: KPISet(0).With(2), Start: 140, End: 160}},
	}
	// Units 1-5 follow on KPI 12: windows [104,124), [124,144).
	for u := 1; u <= 5; u++ {
		byTick[124] = append(byTick[124], Event{Unit: u, DB: 2, KPIs: KPISet(0).With(12), Start: 104, End: 124})
		byTick[144] = append(byTick[144], Event{Unit: u, DB: 2, KPIs: KPISet(0).With(12), Start: 124, End: 144})
	}
	// Unrelated noise incident on unit 20, far outside the proximity window.
	byTick[320] = []Event{{Unit: 20, DB: 1, KPIs: KPISet(0).With(5), Start: 300, End: 320}}

	var rounds []round
	for tick := 0; tick <= 400; tick += 4 {
		rounds = append(rounds, round{tick: tick, events: byTick[tick]})
	}
	return rounds
}

func runScenario(a *Aggregator, rounds []round) {
	for _, r := range rounds {
		a.ObserveRound(r.tick, r.events)
	}
}

func TestCorrelatedFaultCollapsesToOneCluster(t *testing.T) {
	a := New(testConfig())
	runScenario(a, correlatedScenario())

	st := a.Status()
	if st.OpenIncidents != 0 || st.OpenClusters != 0 {
		t.Fatalf("expected fully closed state, got %+v", st)
	}
	if st.ClosedIncidents != 7 {
		t.Fatalf("closed incidents = %d, want 7 (6 fault + 1 noise)", st.ClosedIncidents)
	}
	if st.ClosedClusters != 2 {
		t.Fatalf("closed clusters = %d, want 2 (fault + noise)", st.ClosedClusters)
	}
	// Reinforcements absorbed by dedup: unit 0 had 2, units 1-5 one each.
	if st.Merged != 7 {
		t.Fatalf("merged verdicts = %d, want 7", st.Merged)
	}

	total, reps := a.Page(0, 10)
	if total != 2 || len(reps) != 2 {
		t.Fatalf("Page: total=%d len=%d, want 2/2", total, len(reps))
	}
	fault := reps[0]
	if len(fault.Members) != 6 {
		t.Fatalf("fault cluster has %d members, want 6: %s", len(fault.Members), fault.Summary())
	}
	p := fault.Partition
	if got := intRanges(p.Units); got != "0-5" {
		t.Fatalf("fault cluster units = %q, want 0-5", got)
	}
	if len(p.DBs) != 1 || p.DBs[0] != 2 {
		t.Fatalf("fault cluster dbs = %v, want [2]", p.DBs)
	}
	if p.ConstantKPIs != 0 {
		t.Fatalf("constant KPIs = %v, want none (leader and replicas deviate on different KPIs)", p.ConstantKPIs)
	}
	want := KPISet(0).With(2).With(12)
	if p.VaryingKPIs != want {
		t.Fatalf("varying KPIs = %v, want %v", p.VaryingKPIs, want)
	}
	if !strings.Contains(fault.Summary(), "unit(s) 0-5") {
		t.Fatalf("summary missing unit range: %s", fault.Summary())
	}

	// Lead-lag: KPI 2's onset (tick 100) precedes KPI 12's (tick 104).
	if len(fault.Cascade) != 1 {
		t.Fatalf("fault cluster cascade = %v, want exactly one hint", fault.Cascade)
	}
	h := fault.Cascade[0]
	if h.Lead != 2 || h.Lag != 12 || h.Ticks != 4 {
		t.Fatalf("cascade hint = %+v, want KPI 2 leads KPI 12 by 4", h)
	}
	if h.Share != 1 || h.Samples != 1 {
		t.Fatalf("cascade confidence = %+v, want share 1.0 of 1 sample", h)
	}
	if !strings.Contains(h.String(), "leads") {
		t.Fatalf("cascade hint renders as %q", h.String())
	}

	noise := reps[1]
	if len(noise.Members) != 1 || noise.Members[0].Unit != 20 {
		t.Fatalf("noise cluster = %s, want single unit-20 member", noise.Summary())
	}
}

func TestDeterministicFingerprint(t *testing.T) {
	rounds := correlatedScenario()
	a, b := New(testConfig()), New(testConfig())
	runScenario(a, rounds)
	runScenario(b, rounds)
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if !bytes.Equal(fa, fb) {
		t.Fatalf("two runs over the same stream diverged:\n--- a ---\n%s\n--- b ---\n%s", fa, fb)
	}
	if len(fa) == 0 {
		t.Fatal("empty fingerprint")
	}
}

// TestRestoreMatchesUninterrupted is the rehydration acceptance test: for
// every round-boundary cut point, restoring from the journaled transitions
// and replaying the full deterministic stream (rounds at or below the
// horizon are skipped) lands in a state bit-for-bit identical to the
// uninterrupted run.
func TestRestoreMatchesUninterrupted(t *testing.T) {
	rounds := correlatedScenario()

	ref := New(testConfig())
	var journal []Transition
	ref.SetPersist(func(tr Transition) { journal = append(journal, tr) })
	runScenario(ref, rounds)
	want := ref.Fingerprint()
	if len(journal) == 0 {
		t.Fatal("scenario produced no transitions")
	}

	// Cut points: only at round boundaries — the WAL batches one round's
	// transitions into a single record, so a recovered journal never tears
	// mid-round.
	cuts := []int{0, len(journal)}
	for i := 1; i < len(journal); i++ {
		if journal[i].RoundTick != journal[i-1].RoundTick {
			cuts = append(cuts, i)
		}
	}
	for _, cut := range cuts {
		a := New(testConfig())
		if err := a.Restore(journal[:cut]); err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		if cut > 0 && a.Horizon() != journal[cut-1].RoundTick {
			t.Fatalf("cut %d: horizon = %d, want %d", cut, a.Horizon(), journal[cut-1].RoundTick)
		}
		runScenario(a, rounds) // rounds <= horizon skip; the rest replay live
		if got := a.Fingerprint(); !bytes.Equal(got, want) {
			t.Fatalf("cut %d: rehydrated state diverged:\n--- want ---\n%s\n--- got ---\n%s", cut, want, got)
		}
	}
}

func TestRestoreRejectsCorruptSequences(t *testing.T) {
	open := Transition{Event: TransOpen, ID: 1, Cluster: 1, Unit: 0, DB: 0, KPIs: 1, FirstTick: 0, LastTick: 4, Count: 1, RoundTick: 4}
	cases := map[string][]Transition{
		"duplicate open": {open, open},
		"orphan update":  {{Event: TransUpdate, ID: 9, Unit: 3, DB: 1, KPIs: 2, LastTick: 8, Count: 2, RoundTick: 8}},
		"orphan close":   {{Event: TransClose, ID: 9, Unit: 3, DB: 1, KPIs: 2, LastTick: 8, Count: 2, RoundTick: 8}},
		"unknown event":  {{Event: 77, ID: 1, RoundTick: 4}},
		"mismatched id":  {open, {Event: TransUpdate, ID: 2, Unit: 0, DB: 0, KPIs: 1, LastTick: 8, Count: 2, RoundTick: 8}},
	}
	for name, ts := range cases {
		if err := New(testConfig()).Restore(ts); err == nil {
			t.Errorf("%s: Restore accepted a corrupt sequence", name)
		}
	}
	a := New(testConfig())
	a.ObserveRound(4, []Event{{Unit: 0, DB: 0, KPIs: 1, Start: 0, End: 4}})
	if err := a.Restore(nil); err == nil {
		t.Error("Restore on a non-empty aggregator should fail")
	}
}

func TestEventValidationAndDropCounters(t *testing.T) {
	cfg := testConfig()
	cfg.MaxOpen = 2
	a := New(cfg)
	a.ObserveRound(4, []Event{
		{Unit: -1, DB: 0, KPIs: 1, Start: 0, End: 4}, // negative unit
		{Unit: 0, DB: -1, KPIs: 1, Start: 0, End: 4}, // negative db
		{Unit: 0, DB: 0, KPIs: 1, Start: 4, End: 4},  // empty window
		{Unit: 0, DB: 0, KPIs: 1, Start: 0, End: 4},
		{Unit: 1, DB: 0, KPIs: 1, Start: 0, End: 4},
		{Unit: 2, DB: 0, KPIs: 1, Start: 0, End: 4}, // over MaxOpen
	})
	st := a.Status()
	if st.OpenIncidents != 2 {
		t.Fatalf("open incidents = %d, want 2 (MaxOpen)", st.OpenIncidents)
	}
	if st.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4 (3 invalid + 1 over MaxOpen)", st.Dropped)
	}
}

func TestStaleRoundsAreSkipped(t *testing.T) {
	a := New(testConfig())
	ev := []Event{{Unit: 0, DB: 0, KPIs: 1, Start: 0, End: 4}}
	a.ObserveRound(4, ev)
	before := a.Status()
	a.ObserveRound(4, ev) // replayed round: must be a no-op
	a.ObserveRound(2, ev) // older round: must be a no-op
	if after := a.Status(); after != before {
		t.Fatalf("stale rounds mutated state: %+v -> %+v", before, after)
	}
}

func TestFlushClosesEverything(t *testing.T) {
	a := New(testConfig())
	a.ObserveRound(4, []Event{
		{Unit: 0, DB: 0, KPIs: 1, Start: 0, End: 4},
		{Unit: 1, DB: 0, KPIs: 1, Start: 0, End: 4},
	})
	a.Flush(1000)
	st := a.Status()
	if st.OpenIncidents != 0 || st.OpenClusters != 0 {
		t.Fatalf("Flush left open state: %+v", st)
	}
	if st.ClosedIncidents != 2 || st.ClosedClusters != 1 {
		t.Fatalf("Flush closed %d incidents / %d clusters, want 2/1", st.ClosedIncidents, st.ClosedClusters)
	}
}

func TestHistoryRingsStayBounded(t *testing.T) {
	cfg := testConfig()
	cfg.MaxHistory = 4
	cfg.ProximityTicks = 1
	cfg.CloseAfter = 1
	a := New(cfg)
	// 20 well-separated single-incident bursts: every one closes, but the
	// rings retain only the newest 4.
	for i := 0; i < 20; i++ {
		base := i * 100
		a.ObserveRound(base+4, []Event{{Unit: 0, DB: 0, KPIs: 1, Start: base, End: base + 4}})
		a.ObserveRound(base+10, nil)
	}
	a.Flush(10_000)
	st := a.Status()
	if st.ClosedIncidents != 20 || st.ClosedClusters != 20 {
		t.Fatalf("closed totals = %d/%d, want 20/20", st.ClosedIncidents, st.ClosedClusters)
	}
	total, reps := a.Page(0, 100)
	if total != 4 || len(reps) != 4 {
		t.Fatalf("retained reports = %d/%d, want 4 (MaxHistory)", total, len(reps))
	}
	// Newest survive: IDs ascending and ending at 20.
	if reps[3].ID != 20 || reps[0].ID != 17 {
		t.Fatalf("retained cluster IDs %d..%d, want 17..20", reps[0].ID, reps[3].ID)
	}
}

func TestPageBounds(t *testing.T) {
	a := New(testConfig())
	runScenario(a, correlatedScenario())
	if total, rows := a.Page(5, 10); total != 2 || len(rows) != 0 {
		t.Fatalf("offset past end: total=%d rows=%d", total, len(rows))
	}
	if total, rows := a.Page(-1, 10); total != 2 || len(rows) != 0 {
		t.Fatalf("negative offset: total=%d rows=%d", total, len(rows))
	}
	if _, rows := a.Page(1, 1); len(rows) != 1 || rows[0].ID != 2 {
		t.Fatalf("second page wrong: %v", rows)
	}
	if _, rows := a.Page(0, 0); len(rows) != 2 {
		t.Fatalf("limit 0 should mean no cap: got %d rows", len(rows))
	}
}

// TestSteadyStateDedupIsAllocationFree pins the hot-path guarantee: once
// incidents are open, a full fleet round of reinforcing verdicts (merge +
// sweeps) performs zero allocations.
func TestSteadyStateDedupIsAllocationFree(t *testing.T) {
	cfg := testConfig()
	cfg.CloseAfter = 1 << 30 // keep everything open for the duration
	cfg.ProximityTicks = 1 << 30
	a := New(cfg)
	a.SetPersist(func(Transition) {}) // journal hook on, as in production

	const units = 32
	events := make([]Event, units)
	for u := 0; u < units; u++ {
		events[u] = Event{Unit: u, DB: 2, KPIs: KPISet(0).With(12), Start: 0, End: 4}
	}
	tick := 4
	a.ObserveRound(tick, events) // opens the 32 incidents

	allocs := testing.AllocsPerRun(200, func() {
		tick += 4
		for u := range events {
			events[u].End = tick
		}
		a.ObserveRound(tick, events)
	})
	if allocs != 0 {
		t.Fatalf("steady-state round allocated %.1f times, want 0", allocs)
	}
	if st := a.Status(); st.OpenIncidents != units {
		t.Fatalf("expected %d open incidents, got %+v", units, st)
	}
}
