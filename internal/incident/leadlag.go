package incident

import "fmt"

// pairKey identifies an unordered KPI pair; a < b always.
type pairKey struct{ a, b uint8 }

// leadLag maintains global per-KPI-pair lag histograms across closed
// clusters: each cluster contributes, per pair of KPIs it observed onsets
// for, one sample of (onset[b] - onset[a]) clamped to ±maxLag. Recurring
// cascades concentrate mass in one bin, and the mode becomes the
// "KPI A leads KPI B by ~k ticks" hint with its observed share as
// confidence.
type leadLag struct {
	maxLag int
	hist   map[pairKey][]uint32
}

func (l *leadLag) init(maxLag int) {
	l.maxLag = maxLag
	l.hist = make(map[pairKey][]uint32)
}

// fold adds one cluster's onset vector: every pair of KPIs with recorded
// onsets contributes one lag sample.
func (l *leadLag) fold(onsets *[MaxKPIs]int) {
	for a := 0; a < MaxKPIs; a++ {
		if onsets[a] < 0 {
			continue
		}
		for b := a + 1; b < MaxKPIs; b++ {
			if onsets[b] < 0 {
				continue
			}
			delta := onsets[b] - onsets[a]
			if delta > l.maxLag {
				delta = l.maxLag
			}
			if delta < -l.maxLag {
				delta = -l.maxLag
			}
			k := pairKey{a: uint8(a), b: uint8(b)}
			h, ok := l.hist[k]
			if !ok {
				h = make([]uint32, 2*l.maxLag+1)
				l.hist[k] = h
			}
			h[delta+l.maxLag]++
		}
	}
}

// hint returns the modal lag for the pair (a, b), a < b: lag > 0 means a's
// onset precedes b's by lag ticks. share is the mode's fraction of all
// samples, samples the total count; samples == 0 means the pair was never
// observed. Ties resolve to the most-negative lag, deterministically.
func (l *leadLag) hint(a, b int) (lag int, share float64, samples int) {
	h, ok := l.hist[pairKey{a: uint8(a), b: uint8(b)}]
	if !ok {
		return 0, 0, 0
	}
	total, best, bestAt := uint32(0), uint32(0), 0
	for i, n := range h {
		total += n
		if n > best {
			best, bestAt = n, i
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return bestAt - l.maxLag, float64(best) / float64(total), int(total)
}

// CascadeHint is one oriented lead-lag finding: the Lead KPI's deviation
// typically precedes the Lag KPI's by Ticks.
type CascadeHint struct {
	Lead    int     `json:"lead"`
	Lag     int     `json:"lag"`
	Ticks   int     `json:"ticks"`
	Share   float64 `json:"share"`
	Samples int     `json:"samples"`
}

// String renders the operator hint.
func (h CascadeHint) String() string {
	if h.Ticks == 0 {
		return fmt.Sprintf("%s moves with %s (%.0f%% of %d)",
			kpiName(h.Lead), kpiName(h.Lag), 100*h.Share, h.Samples)
	}
	return fmt.Sprintf("%s leads %s by ~%d tick(s) (%.0f%% of %d)",
		kpiName(h.Lead), kpiName(h.Lag), h.Ticks, 100*h.Share, h.Samples)
}
