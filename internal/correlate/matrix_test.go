package correlate

import (
	"math"
	"testing"
	"testing/quick"

	"dbcatcher/internal/mathx"
	"dbcatcher/internal/timeseries"
)

func TestMatrixPackedTriangle(t *testing.T) {
	m := NewMatrix(4)
	if m.Pairs() != 6 {
		t.Fatalf("Pairs = %d, want 6", m.Pairs())
	}
	m.Set(0, 1, 0.1)
	m.Set(2, 3, 0.9)
	m.Set(3, 1, 0.5) // reversed order must hit the same cell
	if m.At(0, 1) != 0.1 || m.At(1, 0) != 0.1 {
		t.Fatal("symmetry broken for (0,1)")
	}
	if m.At(1, 3) != 0.5 {
		t.Fatal("reversed Set not visible")
	}
	if m.At(2, 2) != 1 {
		t.Fatal("diagonal must be 1")
	}
}

func TestMatrixRow(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 0.2)
	m.Set(0, 2, 0.3)
	m.Set(1, 2, 0.4)
	// Row(1) = scores of DB 1 against DB 0 and DB 2.
	got := m.Row(1)
	if !mathx.EqualApprox(got, []float64{0.2, 0.4}, 0) {
		t.Fatalf("Row(1) = %v", got)
	}
	if got := m.Row(0); !mathx.EqualApprox(got, []float64{0.2, 0.3}, 0) {
		t.Fatalf("Row(0) = %v", got)
	}
}

func TestMatrixPanicsOnBadIndex(t *testing.T) {
	m := NewMatrix(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(0, 5)
}

// buildTestUnit creates a unit with 2 KPIs and 3 databases where databases
// 0 and 1 share a trend and database 2 diverges on KPI 1.
func buildTestUnit() *timeseries.UnitSeries {
	u := timeseries.NewUnitSeries("u", 2, 3)
	n := 60
	for i := 0; i < n; i++ {
		base := math.Sin(2 * math.Pi * float64(i) / 15)
		for k := 0; k < 2; k++ {
			u.Series(k, 0).Append(base)
			u.Series(k, 1).Append(base * 2)
			if k == 0 {
				u.Series(k, 2).Append(base * 1.5)
			} else {
				// Diverging trend for DB 2 on KPI 1.
				u.Series(k, 2).Append(float64(i))
			}
		}
	}
	return u
}

func TestBuildMatrices(t *testing.T) {
	u := buildTestUnit()
	ms, err := BuildMatrices(u, 0, 60, nil, KCDMeasure(DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d matrices, want 2", len(ms))
	}
	// KPI 0: everyone correlates.
	if ms[0].At(0, 1) < 0.99 || ms[0].At(0, 2) < 0.99 {
		t.Fatalf("KPI 0 matrix should be all-correlated: %v %v", ms[0].At(0, 1), ms[0].At(0, 2))
	}
	// KPI 1: DB 2 diverges from both peers while 0-1 stay correlated.
	if ms[1].At(0, 1) < 0.99 {
		t.Fatalf("KPI 1 (0,1) = %v, want ~1", ms[1].At(0, 1))
	}
	if ms[1].At(0, 2) > 0.8 || ms[1].At(1, 2) > 0.8 {
		t.Fatalf("KPI 1 divergent scores too high: %v %v", ms[1].At(0, 2), ms[1].At(1, 2))
	}
}

func TestBuildMatricesInactiveDatabase(t *testing.T) {
	u := buildTestUnit()
	active := []bool{true, true, false}
	ms, err := BuildMatrices(u, 0, 60, active, KCDMeasure(DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "If there exists an unused database ... all of its KPIs'
	// correlation scores are set to 0".
	for k := 0; k < 2; k++ {
		if ms[k].At(0, 2) != 0 || ms[k].At(1, 2) != 0 {
			t.Fatalf("inactive DB scores must be 0, got %v %v", ms[k].At(0, 2), ms[k].At(1, 2))
		}
		if ms[k].At(0, 1) == 0 {
			t.Fatal("active pair should still be scored")
		}
	}
}

func TestBuildMatricesErrors(t *testing.T) {
	u := buildTestUnit()
	if _, err := BuildMatrices(u, 0, 60, nil, nil); err == nil {
		t.Fatal("nil measure should error")
	}
	if _, err := BuildMatrices(u, 50, 60, nil, PearsonMeasure()); err == nil {
		t.Fatal("out-of-range window should error")
	}
}

func TestMeasureAdapters(t *testing.T) {
	x := sine(40, 10, 0)
	y := mathx.Clone(x)
	for name, m := range map[string]Measure{
		"kcd":      KCDMeasure(DefaultOptions()),
		"pearson":  PearsonMeasure(),
		"dtw":      DTWMeasure(-1),
		"spearman": SpearmanMeasure(),
	} {
		if got := m(x, y); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s self-score = %v, want 1", name, got)
		}
	}
}

// Property: Set/At are symmetric and never disturb other cells.
func TestMatrixSymmetryProperty(t *testing.T) {
	f := func(nRaw uint8, iRaw, jRaw uint8, v float64) bool {
		n := int(nRaw%6) + 2
		i := int(iRaw) % n
		j := int(jRaw) % n
		if i == j {
			j = (j + 1) % n
		}
		m := NewMatrix(n)
		m.Set(i, j, v)
		if m.At(i, j) != v || m.At(j, i) != v {
			return false
		}
		// All other pairs stay zero.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if (a == i && b == j) || (a == j && b == i) {
					continue
				}
				if m.At(a, b) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
