package correlate

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dbcatcher/internal/timeseries"
)

// resolveWorkers maps a worker knob to a pool size: values <= 0 use
// GOMAXPROCS, anything else is taken literally (1 = serial).
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// minParallelWork is the smallest score-cell volume (KPIs x database pairs x
// window points) the engine fans out over goroutines. Below it the pool's
// spawn/join overhead rivals the build itself: at the paper's detection
// shape (14 KPIs x 10 pairs x 60 points = 8400 cells, ~20 ns/cell measured)
// a whole serial build finishes in ~180 us, while waking even a few workers
// costs tens of microseconds — and on single-core hosts (GOMAXPROCS=1) the
// fan-out is a pure loss. Results are bit-identical either way: each KPI
// matrix is filled by exactly one goroutine, so the cutoff only changes
// scheduling, never scores. Larger fleets (more databases) or longer
// windows cross the threshold and still parallelize.
const minParallelWork = 50000

// Engine builds the per-KPI correlation matrices of Eq. 5 over a bounded
// worker pool. The Q×pairs task grid is sharded per KPI: each worker claims
// whole KPIs off an atomic counter and fills that matrix alone, so the
// result is bit-identical to the serial build regardless of worker count or
// scheduling. Every worker draws a private Scratch from an internal pool,
// making steady-state KCD matrix builds allocation-lean: only the output
// matrices themselves are allocated.
//
// An Engine is safe for concurrent use and is meant to be built once and
// reused across windows (the streaming monitor keeps one per unit).
type Engine struct {
	workers int
	useKCD  bool
	opts    Options
	measure Measure
	pool    sync.Pool // *Scratch
}

// NewEngine returns the allocation-lean KCD engine: pairs are scored with
// KCDWithDelayScratch under the given options. workers <= 0 sizes the pool
// to GOMAXPROCS; 1 forces the serial path for determinism-sensitive or
// already-parallel callers (results are identical either way — serial only
// removes the goroutine fan-out).
func NewEngine(opts Options, workers int) *Engine {
	return &Engine{workers: workers, useKCD: true, opts: opts}
}

// NewMeasureEngine wraps an arbitrary pairwise measure (the Table X
// ablations: Pearson, Spearman, DTW, or a custom closure). The measure must
// be safe for concurrent use — every measure in this repository is a pure
// function. This path cannot reuse KCD scratch buffers, so a measure built
// by KCDMeasure allocates per pair; prefer NewEngine for KCD.
func NewMeasureEngine(m Measure, workers int) *Engine {
	return &Engine{workers: workers, measure: m}
}

// Workers reports the resolved pool size.
func (e *Engine) Workers() int { return resolveWorkers(e.workers) }

// scratch draws a worker-private scratch sized for a d-database unit.
func (e *Engine) scratch(d int) *Scratch {
	s, _ := e.pool.Get().(*Scratch)
	if s == nil {
		s = NewScratch()
	}
	s.growWindows(d)
	return s
}

// BuildMatrices computes the Q correlation matrices for the window
// [start, start+n) of a unit's multivariate series. active[d] marks whether
// database d participates; per the paper, an unused database has all of its
// scores set to 0. A nil active slice means all databases are active.
func (e *Engine) BuildMatrices(u *timeseries.UnitSeries, start, n int, active []bool) ([]*Matrix, error) {
	if !e.useKCD && e.measure == nil {
		return nil, fmt.Errorf("correlate: nil measure")
	}
	out := make([]*Matrix, u.KPIs)
	for k := range out {
		out[k] = NewMatrix(u.Databases)
	}
	workers := e.Workers()
	if workers > u.KPIs {
		workers = u.KPIs
	}
	if pairs := u.Databases * (u.Databases - 1) / 2; u.KPIs*pairs*n < minParallelWork {
		workers = 1 // small unit: fan-out overhead beats the win (see minParallelWork)
	}
	if workers <= 1 {
		s := e.scratch(u.Databases)
		defer e.pool.Put(s)
		for k := 0; k < u.KPIs; k++ {
			if err := e.buildKPI(u, start, n, active, out[k], k, s); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	// Each KPI slot is owned by exactly one worker, so errs needs no lock;
	// the lowest-indexed error wins deterministically after the join.
	errs := make([]error, u.KPIs)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.scratch(u.Databases)
			defer e.pool.Put(s)
			for {
				k := int(next.Add(1)) - 1
				if k >= u.KPIs || failed.Load() {
					return
				}
				if err := e.buildKPI(u, start, n, active, out[k], k, s); err != nil {
					errs[k] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildKPI fills one KPI's matrix: stage the database windows, then score
// every unordered pair.
func (e *Engine) buildKPI(u *timeseries.UnitSeries, start, n int, active []bool, m *Matrix, k int, s *Scratch) error {
	windows := s.growWindows(u.Databases)
	for d := 0; d < u.Databases; d++ {
		w, err := u.Series(k, d).Window(start, n)
		if err != nil {
			return err
		}
		windows[d] = w
	}
	for i := 0; i < u.Databases; i++ {
		for j := i + 1; j < u.Databases; j++ {
			if active != nil && (!active[i] || !active[j]) {
				m.Set(i, j, 0)
				continue
			}
			if e.useKCD {
				score, _ := KCDWithDelayScratch(windows[i], windows[j], e.opts, s)
				m.Set(i, j, score)
			} else {
				m.Set(i, j, e.measure(windows[i], windows[j]))
			}
		}
	}
	return nil
}

// BuildOption tunes a BuildMatrices call.
type BuildOption func(*buildConfig)

type buildConfig struct {
	workers int
}

// WithWorkers bounds the fan-out worker pool (<= 0 means GOMAXPROCS).
func WithWorkers(n int) BuildOption {
	return func(c *buildConfig) { c.workers = n }
}

// Serial disables the fan-out entirely — the single-goroutine reference
// path for determinism-sensitive callers (results are identical to the
// parallel build; only scheduling differs).
func Serial() BuildOption { return WithWorkers(1) }

// BuildMatrices computes the Q correlation matrices of Eq. 5 for the window
// [start, start+n) of a unit's multivariate series, fanning the per-KPI
// work out over a GOMAXPROCS-bounded worker pool by default (opt out with
// Serial, or bound it with WithWorkers). The measure must be safe for
// concurrent use unless Serial is passed. active[d] marks whether database
// d participates; a nil active slice means all databases are active.
//
// Callers on the KCD hot path should hold a reusable *Engine from
// NewEngine instead: it scores pairs through per-worker scratch buffers
// and avoids the per-call allocations of a generic measure closure.
func BuildMatrices(u *timeseries.UnitSeries, start, n int, active []bool, measure Measure, opt ...BuildOption) ([]*Matrix, error) {
	if measure == nil {
		return nil, fmt.Errorf("correlate: nil measure")
	}
	var cfg buildConfig
	for _, o := range opt {
		o(&cfg)
	}
	return NewMeasureEngine(measure, cfg.workers).BuildMatrices(u, start, n, active)
}
