package correlate

import (
	"math"
	"testing"

	"dbcatcher/internal/mathx"
	"dbcatcher/internal/timeseries"
)

// streamHist accumulates pushed ticks so tests can materialize the exact
// window the stream currently covers and score it with the non-streaming
// engine as the reference.
type streamHist struct {
	kpis, dbs int
	ticks     [][]float64 // per absolute tick, series-major cells
}

func newStreamHist(kpis, dbs int) *streamHist {
	return &streamHist{kpis: kpis, dbs: dbs}
}

func (h *streamHist) push(sample [][]float64) {
	row := make([]float64, h.kpis*h.dbs)
	for k := range sample {
		copy(row[k*h.dbs:], sample[k])
	}
	h.ticks = append(h.ticks, row)
}

// window materializes [base, base+n) as a UnitSeries (gaps as NaN).
func (h *streamHist) window(base, n int) *timeseries.UnitSeries {
	u := timeseries.NewUnitSeries("ref", h.kpis, h.dbs)
	for k := 0; k < h.kpis; k++ {
		for d := 0; d < h.dbs; d++ {
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				vals[i] = h.ticks[base+i][k*h.dbs+d]
			}
			u.Data[k][d].Values = vals
		}
	}
	return u
}

// exactMatrices scores the stream's current window with the serial engine.
func (h *streamHist) exactMatrices(t *testing.T, st *Stream, opts Options, active []bool) []*Matrix {
	t.Helper()
	u := h.window(st.Base(), st.Len())
	mats, err := NewEngine(opts, 1).BuildMatrices(u, 0, st.Len(), active)
	if err != nil {
		t.Fatal(err)
	}
	return mats
}

func newStreamMats(kpis, dbs int) []*Matrix {
	mats := make([]*Matrix, kpis)
	for k := range mats {
		mats[k] = NewMatrix(dbs)
	}
	return mats
}

// compareStreamMats requires every cell within tol of the reference (tol 0
// means bit-identical).
func compareStreamMats(t *testing.T, got, want []*Matrix, tol float64, ctx string) {
	t.Helper()
	for k := range want {
		for i := 0; i < want[k].N; i++ {
			for j := i + 1; j < want[k].N; j++ {
				g, w := got[k].At(i, j), want[k].At(i, j)
				if tol == 0 {
					if g != w {
						t.Fatalf("%s: KPI %d pair (%d,%d): %v != %v (want bit-identical)", ctx, k, i, j, g, w)
					}
					continue
				}
				if math.Abs(g-w) > tol {
					t.Fatalf("%s: KPI %d pair (%d,%d): %v vs %v (diff %g > %g)", ctx, k, i, j, g, w, math.Abs(g-w), tol)
				}
			}
		}
	}
}

// streamSampleGen yields correlated samples with per-series character, so
// the delay scan has structure to find.
func streamSampleGen(kpis, dbs int, rng *mathx.RNG) func(tick int) [][]float64 {
	return func(tick int) [][]float64 {
		sample := make([][]float64, kpis)
		for k := range sample {
			row := make([]float64, dbs)
			base := math.Sin(2*math.Pi*float64(tick)/float64(12+k)) * 10
			for d := range row {
				row[d] = base + 100*float64(k+1) + 0.4*rng.Norm() + float64(d)
			}
			sample[k] = row
		}
		return sample
	}
}

// TestStreamMatchesEngine pushes well past capacity (exercising the
// auto-evicting slide and its subtractive updates) and, at several window
// positions, requires the streaming scores to match the exact engine within
// the documented fast-math bound.
func TestStreamMatchesEngine(t *testing.T) {
	const kpis, dbs, capacity = 4, 5, 48
	opts := DetectionOptions()
	st, err := NewStream(kpis, dbs, opts, capacity)
	if err != nil {
		t.Fatal(err)
	}
	hist := newStreamHist(kpis, dbs)
	gen := streamSampleGen(kpis, dbs, mathx.NewRNG(11))
	mats := newStreamMats(kpis, dbs)
	for tick := 0; tick < 150; tick++ {
		sample := gen(tick)
		hist.push(sample)
		if err := st.Push(sample); err != nil {
			t.Fatal(err)
		}
		if tick%17 != 0 || st.Len() == 0 {
			continue
		}
		if err := st.ScoreInto(mats, nil); err != nil {
			t.Fatal(err)
		}
		compareStreamMats(t, mats, hist.exactMatrices(t, st, opts, nil), 1e-9, "slide")
	}
	if st.Base() == 0 {
		t.Fatal("stream never slid; capacity eviction untested")
	}
}

// TestStreamPushOnlyBitIdentical pins the rebuild equivalence: push-only
// gap-free rolling state scores bit-identically to the same state rebuilt
// from the ring (Invalidate forces the rebuild path).
func TestStreamPushOnlyBitIdentical(t *testing.T) {
	const kpis, dbs = 3, 4
	opts := DetectionOptions()
	st, err := NewStream(kpis, dbs, opts, 64)
	if err != nil {
		t.Fatal(err)
	}
	gen := streamSampleGen(kpis, dbs, mathx.NewRNG(21))
	for tick := 0; tick < 60; tick++ {
		if err := st.Push(gen(tick)); err != nil {
			t.Fatal(err)
		}
	}
	pushed := newStreamMats(kpis, dbs)
	if err := st.ScoreInto(pushed, nil); err != nil {
		t.Fatal(err)
	}
	st.Invalidate()
	rebuilt := newStreamMats(kpis, dbs)
	if err := st.ScoreInto(rebuilt, nil); err != nil {
		t.Fatal(err)
	}
	compareStreamMats(t, pushed, rebuilt, 0, "push vs rebuild")
}

// TestStreamGapFallbackBitIdentical: a pair whose window contains collector
// gaps routes through the exact gap-repairing kernel and must match the
// non-streaming engine bit for bit — the degraded-ingestion contract.
func TestStreamGapFallbackBitIdentical(t *testing.T) {
	const kpis, dbs = 2, 3
	opts := DetectionOptions()
	st, err := NewStream(kpis, dbs, opts, 40)
	if err != nil {
		t.Fatal(err)
	}
	hist := newStreamHist(kpis, dbs)
	gen := streamSampleGen(kpis, dbs, mathx.NewRNG(31))
	for tick := 0; tick < 30; tick++ {
		sample := gen(tick)
		if tick%7 == 3 {
			sample[tick%kpis][tick%dbs] = math.NaN()
		}
		hist.push(sample)
		if err := st.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	if st.GapCells() == 0 {
		t.Fatal("no gaps recorded; fallback untested")
	}
	mats := newStreamMats(kpis, dbs)
	if err := st.ScoreInto(mats, nil); err != nil {
		t.Fatal(err)
	}
	compareStreamMats(t, mats, hist.exactMatrices(t, st, opts, nil), 0, "gap fallback")
}

// TestStreamRandomOps is the property test: random push/gap/drop/reset
// sequences, with the drift checkpoint shrunk so eviction-triggered rebuilds
// fire, must track the exact recompute within tolerance at every probe.
func TestStreamRandomOps(t *testing.T) {
	const kpis, dbs, capacity = 3, 4, 32
	opts := DetectionOptions()
	for seed := uint64(1); seed <= 4; seed++ {
		st, err := NewStream(kpis, dbs, opts, capacity)
		if err != nil {
			t.Fatal(err)
		}
		st.RebuildEvery = 7 // exercise the eviction-drift checkpoint often
		hist := newStreamHist(kpis, dbs)
		rng := mathx.NewRNG(seed * 97)
		gen := streamSampleGen(kpis, dbs, rng)
		mats := newStreamMats(kpis, dbs)
		tick := 0
		for op := 0; op < 400; op++ {
			switch r := rng.Float64(); {
			case r < 0.70: // push, sometimes with gap cells
				sample := gen(tick)
				if rng.Float64() < 0.15 {
					sample[int(rng.Float64()*kpis)][int(rng.Float64()*dbs)] = math.NaN()
				}
				hist.push(sample)
				if err := st.Push(sample); err != nil {
					t.Fatal(err)
				}
				tick++
			case r < 0.85 && st.Len() > 0: // evict a few ticks
				st.Drop(1 + int(rng.Float64()*3))
			case r < 0.90: // round boundary / resync
				st.ResetAt(tick)
			case r < 0.95:
				st.Invalidate()
			default:
				if st.Len() == 0 {
					continue
				}
				if err := st.ScoreInto(mats, nil); err != nil {
					t.Fatal(err)
				}
				compareStreamMats(t, mats, hist.exactMatrices(t, st, opts, nil), 1e-9, "random ops")
			}
		}
		if st.Len() > 0 {
			if err := st.ScoreInto(mats, nil); err != nil {
				t.Fatal(err)
			}
			compareStreamMats(t, mats, hist.exactMatrices(t, st, opts, nil), 1e-9, "final")
		}
	}
}

// TestStreamActiveMask mirrors Engine semantics: masked pairs read 0,
// unmasked pairs are unaffected by the mask.
func TestStreamActiveMask(t *testing.T) {
	const kpis, dbs = 2, 4
	opts := DetectionOptions()
	st, err := NewStream(kpis, dbs, opts, 32)
	if err != nil {
		t.Fatal(err)
	}
	hist := newStreamHist(kpis, dbs)
	gen := streamSampleGen(kpis, dbs, mathx.NewRNG(41))
	for tick := 0; tick < 25; tick++ {
		sample := gen(tick)
		hist.push(sample)
		if err := st.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	active := []bool{true, false, true, true}
	mats := newStreamMats(kpis, dbs)
	if err := st.ScoreInto(mats, active); err != nil {
		t.Fatal(err)
	}
	compareStreamMats(t, mats, hist.exactMatrices(t, st, opts, active), 1e-9, "masked")
	for k := 0; k < kpis; k++ {
		for j := 0; j < dbs; j++ {
			if j == 1 {
				continue
			}
			lo, hi := 1, j
			if lo > hi {
				lo, hi = hi, lo
			}
			if v := mats[k].At(lo, hi); v != 0 {
				t.Fatalf("masked pair (%d,%d) scored %v", lo, hi, v)
			}
		}
	}
}

// TestStreamDegenerateConstants pins the Eq. 1 degenerate rules through the
// rolling-stat path: two constant windows correlate 1, constant against
// varying correlates 0 — matching the exact kernel.
func TestStreamDegenerateConstants(t *testing.T) {
	opts := DetectionOptions()
	st, err := NewStream(1, 3, opts, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(51)
	for tick := 0; tick < 12; tick++ {
		if err := st.Push([][]float64{{5, 5, rng.Norm()}}); err != nil {
			t.Fatal(err)
		}
	}
	mats := newStreamMats(1, 3)
	if err := st.ScoreInto(mats, nil); err != nil {
		t.Fatal(err)
	}
	if v := mats[0].At(0, 1); v != 1 {
		t.Fatalf("const-const pair scored %v, want 1", v)
	}
	if v := mats[0].At(0, 2); v != 0 {
		t.Fatalf("const-varying pair scored %v, want 0", v)
	}
}

// TestStreamLargeDelayFallback: delay budgets beyond MaxTrackedLag disable
// the incremental tier; every pair goes through the exact kernel with the
// FFT delay scan. With UseFFT set explicitly both sides run the FFT kernel
// and must agree bit for bit; with only a large MaxDelayPoints the stream's
// FFT crossover is compared against the engine's direct scan in tolerance.
func TestStreamLargeDelayFallback(t *testing.T) {
	const kpis, dbs = 2, 3
	cases := []struct {
		name string
		opts Options
		tol  float64
	}{
		{"explicit-fft", Options{MaxDelayFraction: 0.5, MaxDelayPoints: 40, Normalize: true, UseFFT: true}, 0},
		{"crossover", Options{MaxDelayFraction: 0.5, MaxDelayPoints: 40, Normalize: true}, 1e-8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := NewStream(kpis, dbs, tc.opts, 128)
			if err != nil {
				t.Fatal(err)
			}
			hist := newStreamHist(kpis, dbs)
			gen := streamSampleGen(kpis, dbs, mathx.NewRNG(61))
			for tick := 0; tick < 120; tick++ {
				sample := gen(tick)
				hist.push(sample)
				if err := st.Push(sample); err != nil {
					t.Fatal(err)
				}
			}
			mats := newStreamMats(kpis, dbs)
			if err := st.ScoreInto(mats, nil); err != nil {
				t.Fatal(err)
			}
			compareStreamMats(t, mats, hist.exactMatrices(t, st, tc.opts, nil), tc.tol, tc.name)
		})
	}
}

// TestStreamZeroAllocSteadyState pins the tentpole's allocation contract on
// the raw tier: a warm stream pushing (including past capacity, so the
// subtractive slide is in the loop) and scoring allocates nothing — on the
// incremental path, the gap fallback, and the FFT fallback alike.
func TestStreamZeroAllocSteadyState(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		gaps bool
	}{
		{"incremental", DetectionOptions(), false},
		{"gap-fallback", DetectionOptions(), true},
		{"fft-fallback", Options{MaxDelayFraction: 0.5, MaxDelayPoints: 40, Normalize: true, UseFFT: true}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const kpis, dbs, capacity = 4, 5, 60
			st, err := NewStream(kpis, dbs, tc.opts, capacity)
			if err != nil {
				t.Fatal(err)
			}
			gen := streamSampleGen(kpis, dbs, mathx.NewRNG(71))
			samples := make([][][]float64, 97)
			for i := range samples {
				samples[i] = gen(i)
				if tc.gaps && i%5 == 2 {
					samples[i][i%kpis][i%dbs] = math.NaN()
				}
			}
			mats := newStreamMats(kpis, dbs)
			warm := func() {
				for _, s := range samples {
					if err := st.Push(s); err != nil {
						t.Fatal(err)
					}
					if err := st.ScoreInto(mats, nil); err != nil {
						t.Fatal(err)
					}
				}
			}
			warm() // fills capacity, warms scratch buffers
			if allocs := testing.AllocsPerRun(3, warm); allocs != 0 {
				t.Fatalf("steady-state stream allocates %.1f/op, want 0", allocs)
			}
		})
	}
}
