package correlate

import (
	"math"
	"testing"

	"dbcatcher/internal/timeseries"
)

// engineTestUnit builds a unit with enough KPIs to exercise the per-KPI
// sharding: each (KPI, database) series mixes a shared trend with a
// deterministic per-series component.
func engineTestUnit(kpis, dbs, n int) *timeseries.UnitSeries {
	u := timeseries.NewUnitSeries("engine", kpis, dbs)
	for k := 0; k < kpis; k++ {
		for d := 0; d < dbs; d++ {
			for i := 0; i < n; i++ {
				base := math.Sin(2 * math.Pi * float64(i) / float64(10+k))
				jitter := 0.3 * math.Cos(float64(i*(d+1)+k*7)/9)
				u.Series(k, d).Append(base + jitter + float64(d))
			}
		}
	}
	return u
}

func matricesEqual(a, b []*Matrix) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k].N != b[k].N {
			return false
		}
		for i := 0; i < a[k].N; i++ {
			for j := i + 1; j < a[k].N; j++ {
				// Bit-identical, not approximately equal: the parallel
				// build must perform the exact same float ops.
				if a[k].At(i, j) != b[k].At(i, j) {
					return false
				}
			}
		}
	}
	return true
}

// TestEngineParallelMatchesSerial is the core determinism guarantee: the
// same matrices, bit for bit, at every worker count, on both the scratch
// KCD path and the generic measure path.
func TestEngineParallelMatchesSerial(t *testing.T) {
	u := engineTestUnit(14, 5, 60)
	opts := DetectionOptions()
	ref, err := NewEngine(opts, 1).BuildMatrices(u, 0, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 100} {
		got, err := NewEngine(opts, workers).BuildMatrices(u, 0, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(ref, got) {
			t.Fatalf("workers=%d diverged from serial build", workers)
		}
	}
	// The measure path (what the seed's BuildMatrices computed) must agree
	// exactly with the scratch path at any concurrency.
	for _, workers := range []int{1, 4} {
		got, err := NewMeasureEngine(KCDMeasure(opts), workers).BuildMatrices(u, 0, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(ref, got) {
			t.Fatalf("measure engine (workers=%d) diverged from scratch engine", workers)
		}
	}
}

// TestEngineParallelAboveCutoff exercises the goroutine fan-out with a unit
// large enough to clear minParallelWork (the detection-sized unit in
// TestEngineParallelMatchesSerial now stays serial by the work cutoff, which
// is invisible by construction — each KPI matrix is filled by one goroutine
// either way). The fan-out must stay bit-identical to the serial reference.
func TestEngineParallelAboveCutoff(t *testing.T) {
	u := engineTestUnit(14, 12, 60) // 14 KPIs x 66 pairs x 60 points > minParallelWork
	if work := 14 * (12 * 11 / 2) * 60; work < minParallelWork {
		t.Fatalf("test unit volume %d no longer clears the cutoff %d", work, minParallelWork)
	}
	opts := DetectionOptions()
	ref, err := NewEngine(opts, 1).BuildMatrices(u, 0, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3, 16} {
		got, err := NewEngine(opts, workers).BuildMatrices(u, 0, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(ref, got) {
			t.Fatalf("workers=%d diverged from serial build above cutoff", workers)
		}
	}
}

func TestEngineReusedAcrossWindows(t *testing.T) {
	u := engineTestUnit(6, 4, 120)
	e := NewEngine(DetectionOptions(), 2)
	for _, start := range []int{0, 20, 40, 60} {
		got, err := e.BuildMatrices(u, start, 40, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewEngine(DetectionOptions(), 1).BuildMatrices(u, start, 40, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(want, got) {
			t.Fatalf("window start=%d diverged on reused engine", start)
		}
	}
}

func TestEngineActiveMask(t *testing.T) {
	u := engineTestUnit(4, 4, 60)
	active := []bool{true, false, true, true}
	for _, workers := range []int{1, 3} {
		ms, err := NewEngine(DefaultOptions(), workers).BuildMatrices(u, 0, 60, active)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ms {
			for i := 0; i < 4; i++ {
				if i == 1 {
					continue
				}
				if ms[k].At(i, 1) != 0 {
					t.Fatalf("inactive DB score (%d,1) = %v, want 0", i, ms[k].At(i, 1))
				}
			}
			if ms[k].At(0, 2) == 0 {
				t.Fatal("active pair should still be scored")
			}
		}
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	u := engineTestUnit(8, 3, 30)
	for _, workers := range []int{1, 4} {
		if _, err := NewEngine(DefaultOptions(), workers).BuildMatrices(u, 20, 30, nil); err == nil {
			t.Fatalf("workers=%d: out-of-range window should error", workers)
		}
	}
	if _, err := (&Engine{}).BuildMatrices(u, 0, 30, nil); err == nil {
		t.Fatal("engine with neither KCD nor measure should error")
	}
}

// TestKCDScratchZeroAlloc pins the tentpole's allocation contract: a warm
// scratch makes the direct KCD path allocation-free.
func TestKCDScratchZeroAlloc(t *testing.T) {
	x := sine(60, 12, 0)
	y := sine(60, 12, 2)
	opts := DetectionOptions()
	s := NewScratch()
	KCDWithDelayScratch(x, y, opts, s) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		KCDWithDelayScratch(x, y, opts, s)
	})
	if allocs != 0 {
		t.Fatalf("warm scratch KCD allocates %v times per run, want 0", allocs)
	}
}

// TestEngineSerialBuildLeanAllocs pins the build-level contract: a warm
// serial engine allocates only the output matrices (1 slice header + Q
// matrices x 2 allocations each).
func TestEngineSerialBuildLeanAllocs(t *testing.T) {
	u := engineTestUnit(14, 5, 60)
	e := NewEngine(DetectionOptions(), 1)
	if _, err := e.BuildMatrices(u, 0, 60, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.BuildMatrices(u, 0, 60, nil); err != nil {
			t.Fatal(err)
		}
	})
	// 1 for the []*Matrix, 2 per Matrix (struct + packed scores), and a
	// Window header per (KPI, database) series.
	budget := float64(1 + 3*u.KPIs + u.KPIs*u.Databases)
	if allocs > budget {
		t.Fatalf("warm serial build allocates %v times per run, budget %v", allocs, budget)
	}
}
