package correlate

import (
	"fmt"

	"dbcatcher/internal/mathx"
)

// Measure computes a correlation score in [-1, 1] (or [0, 1]) between two
// equal-length windows. KCD, Pearson, and DTWSimilarity all fit this shape
// via small closures, which is how Table X swaps measurement methods.
type Measure func(x, y []float64) float64

// KCDMeasure adapts KCD with the given options to the Measure interface.
func KCDMeasure(opts Options) Measure {
	return func(x, y []float64) float64 { return KCD(x, y, opts) }
}

// PearsonMeasure adapts Pearson correlation on min-max-normalized windows
// ("MM-Pearson" in Table X).
func PearsonMeasure() Measure {
	return func(x, y []float64) float64 {
		return Pearson(mathx.Normalize(x), mathx.Normalize(y))
	}
}

// DTWMeasure adapts DTW similarity ("MM-DTW" in Table X) with the given
// band radius.
func DTWMeasure(radius int) Measure {
	return func(x, y []float64) float64 { return DTWSimilarity(x, y, radius) }
}

// SpearmanMeasure adapts Spearman rank correlation.
func SpearmanMeasure() Measure {
	return func(x, y []float64) float64 { return Spearman(x, y) }
}

// Matrix is one correlation matrix CM_j of Eq. 5: the pairwise correlation
// scores of N databases on one KPI within a time window. Only the upper
// triangle is stored (the matrix is symmetric with unit diagonal).
type Matrix struct {
	N      int
	scores []float64 // packed upper triangle, row-major, excluding diagonal
}

// NewMatrix returns an N×N correlation matrix with all pair scores zero.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("correlate: negative matrix size")
	}
	return &Matrix{N: n, scores: make([]float64, n*(n-1)/2)}
}

// index maps (i, j) with i < j to the packed triangle offset.
func (m *Matrix) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i == j || j >= m.N || i < 0 {
		panic(fmt.Sprintf("correlate: bad pair (%d, %d) for N=%d", i, j, m.N))
	}
	// Offset of row i in the packed triangle plus column displacement.
	return i*(2*m.N-i-1)/2 + (j - i - 1)
}

// At returns the correlation score between databases i and j. The diagonal
// is 1 by definition.
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		if i < 0 || i >= m.N {
			panic(fmt.Sprintf("correlate: index %d out of range", i))
		}
		return 1
	}
	return m.scores[m.index(i, j)]
}

// Set stores the score for the unordered pair (i, j), i != j.
func (m *Matrix) Set(i, j int, v float64) { m.scores[m.index(i, j)] = v }

// Row returns database j's scores against every other database, in
// database order with j itself skipped. This is the Search function of
// Algorithm 1 (the KCDS list).
func (m *Matrix) Row(j int) []float64 {
	out := make([]float64, 0, m.N-1)
	for i := 0; i < m.N; i++ {
		if i == j {
			continue
		}
		out = append(out, m.At(i, j))
	}
	return out
}

// Pairs returns the number of stored pair scores.
func (m *Matrix) Pairs() int { return len(m.scores) }

