package correlate

import (
	"math"
	"sort"

	"dbcatcher/internal/mathx"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// windows, in [-1, 1]. Constant windows follow the same degenerate rules as
// KCD: both constant -> 1, one constant -> 0.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if len(y) != n {
		panic(mathx.ErrLengthMismatch)
	}
	if n == 0 {
		return 0
	}
	mx, my := mathx.Mean(x), mathx.Mean(y)
	var num, nx, ny float64
	for i := 0; i < n; i++ {
		a, b := x[i]-mx, y[i]-my
		num += a * b
		nx += a * a
		ny += b * b
	}
	if nx == 0 && ny == 0 {
		return 1
	}
	return safeRatio(num, nx, ny, 0, 0)
}

// Spearman returns Spearman's rank correlation coefficient, i.e. the
// Pearson correlation of the ranks, with average ranks for ties.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(mathx.ErrLengthMismatch)
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks assigns 1-based average ranks to v.
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// DTWDistance returns the dynamic-time-warping distance between x and y
// with a Sakoe-Chiba band of the given radius (radius < 0 means
// unconstrained). Cost is squared pointwise difference; the returned value
// is the square root of the accumulated cost.
func DTWDistance(x, y []float64, radius int) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if radius < 0 {
		radius = max(n, m)
	}
	// Ensure the band is wide enough to connect the corners when the
	// lengths differ.
	if d := abs(n - m); radius < d {
		radius = d
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := max(1, i-radius)
		hi := min(m, i+radius)
		for j := lo; j <= hi; j++ {
			d := x[i-1] - y[j-1]
			c := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m])
}

// DTWSimilarity converts the DTW distance between min-max-normalized
// windows into a correlation-like score in (0, 1]: identical trends score
// 1, diverging trends approach 0. This is the "MM-DTW" variant of Table X.
func DTWSimilarity(x, y []float64, radius int) float64 {
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	nx := mathx.Normalize(x)
	ny := mathx.Normalize(y)
	d := DTWDistance(nx, ny, radius)
	// Normalize by sqrt of path length so the score is window-size free.
	return 1 / (1 + d/math.Sqrt(float64(len(x))))
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
