package correlate

import (
	"fmt"
	"math"
)

// MaxTrackedLag bounds the per-delay rolling-stat depth of a Stream: a
// delay budget up to this many points is maintained incrementally (O(1)
// update per tick per stat cell); beyond it a window's delay scan switches
// to the exact kernel, which the Stream flips to the FFT path — for m >
// MaxTrackedLag the O(W log W) cross-correlation beats the O(W·m) direct
// scan, while tracked budgets stay on the direct scan so the gap fallback
// remains bit-identical to the non-streaming engine.
const MaxTrackedLag = 16

// DefaultRebuildEvery is the default number of evictions between full
// rolling-stat rebuilds. Push-only accumulation adds terms in the exact
// order of a fresh rebuild (bit-identical by construction); only eviction
// subtracts, and each subtraction can leave one rounding term behind, so
// the drift after k evictions is bounded by k·ε relative to the largest
// intermediate sum. Rebuilding every 4096 evictions keeps that residue far
// below the 1e-12 degeneracy epsilons.
const DefaultRebuildEvery = 4096

// Stream is the incremental streaming KCD tier: it maintains, per series,
// rolling sums and sums of squares (full-window plus per-delay suffix and
// prefix variants) and, per (KPI, database-pair, delay) cell, rolling
// cross-products, so that after each pushed tick every pair's Eq. 2-4
// delay scan evaluates from O(1)-updated state instead of an O(W) rescan.
//
// Numerical policy (the documented fast-math contract): scores equal the
// exact kernel's mathematically — KCD is invariant under the per-series
// positive affine maps that min-max normalization (Eq. 1) applies — but
// are computed from raw-moment formulas on anchor-shifted samples (each
// series is shifted by its first windowed value, so catastrophic
// cancellation of a large mean is avoided). The result differs from the
// exact recompute by O(ε·κ) where κ ≈ 1 + (window mean offset / window
// std)² after anchoring — in practice ≤ 1e-9 absolute on detection-scale
// windows. Push-only (gap-free, no eviction) state is bit-identical to a
// full rebuild; pairs whose window contains collector gaps are routed to
// the exact gap-repairing kernel and match the non-streaming engine
// bit-for-bit.
//
// Exact-recompute fallbacks and rebuild triggers:
//
//   - gap in either series' window → exact kernel for that pair;
//   - delay budget beyond MaxTrackedLag (or Options.UseFFT) → exact kernel
//     with the FFT delay scan;
//   - eviction-drift checkpoint (RebuildEvery) → all stats marked stale,
//     rebuilt from the ring on the next score;
//   - Invalidate (resync / restored-from-snapshot state) → same.
//
// A Stream is not safe for concurrent use; the monitor serializes access
// under its judge mutex.
type Stream struct {
	kpis, dbs int
	series    int // kpis*dbs
	pairs     int // per-KPI unordered database pairs
	opts      Options
	maxLag    int // tracked delay depth; 0 = always use the exact fallback
	lagStride int // 2*maxLag + 1 cross cells per pair
	capacity  int

	base int // absolute tick of the window start
	head int // ring slot of the window start
	n    int // window length

	buf       []float64 // series-major ring storage, gaps stored as NaN
	gapCnt    []int     // per-series gap cells in the current window
	totalGaps int

	anchor   []float64
	anchored []bool
	statsOK  []bool
	sum      []float64
	sumsq    []float64
	suf      []float64 // series × maxLag: Σ x'[i], i ∈ [s, n)
	sufSq    []float64
	pre      []float64 // series × maxLag: Σ x'[i], i ∈ [0, n-s)
	preSq    []float64

	crossOK []bool
	cross   []float64 // (kpis*pairs) × lagStride

	drops int
	// RebuildEvery overrides the eviction-drift checkpoint interval
	// (DefaultRebuildEvery); tests shrink it to exercise the rebuild path.
	RebuildEvery int

	scratch    *Scratch
	winA, winB []float64
}

// NewStream builds a streaming scorer for a kpis×dbs unit whose windows
// never exceed capacity ticks (push auto-evicts the oldest tick beyond
// that). The per-delay rolling stats are maintained when the delay budget
// is tracked (0 < MaxDelayPoints <= MaxTrackedLag and UseFFT unset);
// otherwise every score goes through the exact kernel with the FFT delay
// scan, still allocation-free after warm-up.
func NewStream(kpis, dbs int, opts Options, capacity int) (*Stream, error) {
	if kpis <= 0 || dbs <= 0 {
		return nil, fmt.Errorf("correlate: non-positive stream shape %dx%d", kpis, dbs)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("correlate: non-positive stream capacity %d", capacity)
	}
	maxLag := 0
	if !opts.UseFFT && opts.MaxDelayPoints > 0 && opts.MaxDelayPoints <= MaxTrackedLag {
		maxLag = opts.MaxDelayPoints
	}
	st := &Stream{
		kpis:         kpis,
		dbs:          dbs,
		series:       kpis * dbs,
		pairs:        dbs * (dbs - 1) / 2,
		opts:         opts,
		maxLag:       maxLag,
		lagStride:    2*maxLag + 1,
		capacity:     capacity,
		RebuildEvery: DefaultRebuildEvery,
		scratch:      NewScratch(),
	}
	st.buf = make([]float64, st.series*capacity)
	st.gapCnt = make([]int, st.series)
	st.anchor = make([]float64, st.series)
	st.anchored = make([]bool, st.series)
	st.statsOK = make([]bool, st.series)
	st.sum = make([]float64, st.series)
	st.sumsq = make([]float64, st.series)
	st.suf = make([]float64, st.series*maxLag)
	st.sufSq = make([]float64, st.series*maxLag)
	st.pre = make([]float64, st.series*maxLag)
	st.preSq = make([]float64, st.series*maxLag)
	st.crossOK = make([]bool, kpis*st.pairs)
	st.cross = make([]float64, kpis*st.pairs*st.lagStride)
	st.winA = make([]float64, capacity)
	st.winB = make([]float64, capacity)
	st.ResetAt(0)
	return st, nil
}

// Shape returns the configured KPI and database counts.
func (st *Stream) Shape() (kpis, dbs int) { return st.kpis, st.dbs }

// Len returns the current window length in ticks.
func (st *Stream) Len() int { return st.n }

// Base returns the absolute tick index of the window start.
func (st *Stream) Base() int { return st.base }

// End returns one past the absolute tick index of the newest windowed tick.
func (st *Stream) End() int { return st.base + st.n }

// GapCells returns the number of gap cells inside the current window.
func (st *Stream) GapCells() int { return st.totalGaps }

// ResetAt empties the window and positions its start at the absolute tick
// index start (a judgment round boundary). All rolling state is cleared.
func (st *Stream) ResetAt(start int) {
	st.base = start
	st.head = 0
	st.n = 0
	st.totalGaps = 0
	st.drops = 0
	for i := range st.gapCnt {
		st.gapCnt[i] = 0
		st.anchored[i] = false
		st.statsOK[i] = true
		st.sum[i] = 0
		st.sumsq[i] = 0
	}
	for i := range st.suf {
		st.suf[i] = 0
		st.sufSq[i] = 0
		st.pre[i] = 0
		st.preSq[i] = 0
	}
	for i := range st.crossOK {
		st.crossOK[i] = true
	}
	for i := range st.cross {
		st.cross[i] = 0
	}
}

// Invalidate marks every rolling stat stale without touching the stored
// samples: the next score rebuilds from the ring. Callers use it after
// resynchronizing or restoring the window contents from a snapshot, and
// the eviction-drift checkpoint uses it internally.
func (st *Stream) Invalidate() {
	for i := range st.statsOK {
		st.statsOK[i] = false
	}
	for i := range st.crossOK {
		st.crossOK[i] = false
	}
}

// at returns the window's i-th tick (0 = oldest) of the given series.
func (st *Stream) at(sIdx, i int) float64 {
	pos := st.head + i
	if pos >= st.capacity {
		pos -= st.capacity
	}
	return st.buf[sIdx*st.capacity+pos]
}

// pairIndex maps an unordered database pair (i < j) to its packed offset,
// matching Matrix's upper-triangle layout.
func pairIndex(i, j, n int) int {
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// Push appends one collection tick: sample[k][d] is KPI k's value on
// database d, NaN marking a collector gap. The shape must match exactly.
// When the window is at capacity the oldest tick is evicted first.
func (st *Stream) Push(sample [][]float64) error {
	if len(sample) != st.kpis {
		return fmt.Errorf("correlate: sample has %d KPI rows, want %d", len(sample), st.kpis)
	}
	for k, row := range sample {
		if len(row) != st.dbs {
			return fmt.Errorf("correlate: KPI %d row has %d databases, want %d", k, len(row), st.dbs)
		}
	}
	if st.n == st.capacity {
		st.Drop(1)
	}
	j := st.n
	slot := st.head + j
	if slot >= st.capacity {
		slot -= st.capacity
	}
	// Store the tick (and account gaps) before accumulating: the stat
	// helpers read back through the ring, so push-time accumulation is the
	// same code path — and bit-identical to — a full rebuild's replay.
	for k, row := range sample {
		for d, v := range row {
			sIdx := k*st.dbs + d
			st.buf[sIdx*st.capacity+slot] = v
			if math.IsNaN(v) {
				st.gapCnt[sIdx]++
				st.totalGaps++
				st.invalidateSeries(k, d)
			} else if !st.anchored[sIdx] {
				st.anchor[sIdx] = v
				st.anchored[sIdx] = true
			}
		}
	}
	st.n++
	for sIdx := 0; sIdx < st.series; sIdx++ {
		if st.statsOK[sIdx] && st.gapCnt[sIdx] == 0 {
			st.accumSeries(sIdx, j)
		}
	}
	for k := 0; k < st.kpis; k++ {
		for c, i := k*st.pairs, 0; i < st.dbs; i++ {
			for jj := i + 1; jj < st.dbs; jj++ {
				if st.crossOK[c] {
					st.accumCross(k, c, i, jj, j)
				}
				c++
			}
		}
	}
	return nil
}

// invalidateSeries marks a gapped series' rolling stats stale along with
// every cross-product cell that references it.
func (st *Stream) invalidateSeries(k, d int) {
	st.statsOK[k*st.dbs+d] = false
	for e := 0; e < st.dbs; e++ {
		if e == d {
			continue
		}
		lo, hi := d, e
		if lo > hi {
			lo, hi = hi, lo
		}
		st.crossOK[k*st.pairs+pairIndex(lo, hi, st.dbs)] = false
	}
}

// accumSeries folds the window's j-th tick into one series' rolling sums.
// Both Push and the rebuild path run exactly this, in ascending j order, so
// push-accumulated state is bit-identical to rebuilt state.
func (st *Stream) accumSeries(sIdx, j int) {
	w := st.at(sIdx, j) - st.anchor[sIdx]
	st.sum[sIdx] += w
	st.sumsq[sIdx] += w * w
	off := sIdx * st.maxLag
	for s := 1; s <= st.maxLag; s++ {
		if j < s {
			break
		}
		st.suf[off+s-1] += w
		st.sufSq[off+s-1] += w * w
		wp := st.at(sIdx, j-s) - st.anchor[sIdx]
		st.pre[off+s-1] += wp
		st.preSq[off+s-1] += wp * wp
	}
}

// accumCross folds the window's j-th tick into one pair's cross-product
// cells: lag 0 at offset 0, delay +s (database i's series lagging) at
// offset s, delay -s at offset maxLag+s.
func (st *Stream) accumCross(k, c, i, jdb, j int) {
	a := k*st.dbs + i
	b := k*st.dbs + jdb
	base := c * st.lagStride
	wa := st.at(a, j) - st.anchor[a]
	wb := st.at(b, j) - st.anchor[b]
	st.cross[base] += wa * wb
	for s := 1; s <= st.maxLag; s++ {
		if j < s {
			break
		}
		st.cross[base+s] += wa * (st.at(b, j-s) - st.anchor[b])
		st.cross[base+st.maxLag+s] += wb * (st.at(a, j-s) - st.anchor[a])
	}
}

// Drop evicts the ticks oldest ticks from the window, updating the rolling
// stats by subtraction (the drift this introduces is bounded by the
// RebuildEvery checkpoint).
func (st *Stream) Drop(ticks int) {
	for t := 0; t < ticks && st.n > 0; t++ {
		st.dropOne()
	}
}

func (st *Stream) dropOne() {
	L := st.maxLag
	for sIdx := 0; sIdx < st.series; sIdx++ {
		v0 := st.at(sIdx, 0)
		if math.IsNaN(v0) {
			st.gapCnt[sIdx]--
			st.totalGaps--
			continue // stats were already stale; rebuilt once gap-free
		}
		if !st.statsOK[sIdx] {
			continue
		}
		w0 := v0 - st.anchor[sIdx]
		st.sum[sIdx] -= w0
		st.sumsq[sIdx] -= w0 * w0
		off := sIdx * L
		for s := 1; s <= L; s++ {
			if st.n <= s {
				break
			}
			ws := st.at(sIdx, s) - st.anchor[sIdx]
			st.suf[off+s-1] -= ws
			st.sufSq[off+s-1] -= ws * ws
			st.pre[off+s-1] -= w0
			st.preSq[off+s-1] -= w0 * w0
		}
	}
	for k := 0; k < st.kpis; k++ {
		for c, i := k*st.pairs, 0; i < st.dbs; i++ {
			for jj := i + 1; jj < st.dbs; jj++ {
				if st.crossOK[c] {
					a := k*st.dbs + i
					b := k*st.dbs + jj
					base := c * st.lagStride
					wa0 := st.at(a, 0) - st.anchor[a]
					wb0 := st.at(b, 0) - st.anchor[b]
					st.cross[base] -= wa0 * wb0
					for s := 1; s <= L; s++ {
						if st.n <= s {
							break
						}
						st.cross[base+s] -= (st.at(a, s) - st.anchor[a]) * wb0
						st.cross[base+L+s] -= (st.at(b, s) - st.anchor[b]) * wa0
					}
				}
				c++
			}
		}
	}
	st.head++
	if st.head == st.capacity {
		st.head = 0
	}
	st.n--
	st.base++
	st.drops++
	if st.drops >= st.RebuildEvery {
		// Numerical-drift checkpoint: bound the accumulated subtraction
		// rounding by rebuilding everything from the retained samples.
		st.Invalidate()
		st.drops = 0
	}
}

// ScoreInto fills the per-KPI correlation matrices for the current window,
// mirroring Engine.BuildMatrices semantics: active[d] marks participation
// (nil = all), and a masked pair's score is 0. Matrices must be kpis
// entries of size dbs; their previous contents are fully overwritten.
func (st *Stream) ScoreInto(mats []*Matrix, active []bool) error {
	if len(mats) != st.kpis {
		return fmt.Errorf("correlate: %d matrices for %d KPIs", len(mats), st.kpis)
	}
	for k, m := range mats {
		if m == nil || m.N != st.dbs {
			return fmt.Errorf("correlate: matrix %d does not match %d databases", k, st.dbs)
		}
	}
	if active != nil && len(active) != st.dbs {
		return fmt.Errorf("correlate: active mask has %d entries for %d databases", len(active), st.dbs)
	}
	if st.n == 0 {
		return fmt.Errorf("correlate: empty stream window")
	}
	m := st.opts.maxDelay(st.n)
	incremental := st.maxLag > 0 && m <= st.maxLag
	for k := 0; k < st.kpis; k++ {
		for i := 0; i < st.dbs; i++ {
			for j := i + 1; j < st.dbs; j++ {
				if active != nil && (!active[i] || !active[j]) {
					mats[k].Set(i, j, 0)
					continue
				}
				a := k*st.dbs + i
				b := k*st.dbs + j
				if !incremental || st.gapCnt[a] > 0 || st.gapCnt[b] > 0 {
					mats[k].Set(i, j, st.exactPair(a, b))
					continue
				}
				st.ensureSeries(a)
				st.ensureSeries(b)
				st.ensureCross(k, i, j)
				mats[k].Set(i, j, st.scorePair(k, i, j, m))
			}
		}
	}
	return nil
}

// ensureSeries rebuilds one series' rolling sums from the ring when stale.
// The caller guarantees the series' window is gap-free.
func (st *Stream) ensureSeries(sIdx int) {
	if st.statsOK[sIdx] {
		return
	}
	st.anchor[sIdx] = st.at(sIdx, 0)
	st.anchored[sIdx] = true
	st.sum[sIdx] = 0
	st.sumsq[sIdx] = 0
	off := sIdx * st.maxLag
	for s := 0; s < st.maxLag; s++ {
		st.suf[off+s] = 0
		st.sufSq[off+s] = 0
		st.pre[off+s] = 0
		st.preSq[off+s] = 0
	}
	for j := 0; j < st.n; j++ {
		st.accumSeries(sIdx, j)
	}
	st.statsOK[sIdx] = true
}

// ensureCross rebuilds one pair's cross-product cells from the ring when
// stale. Both series' stats (and anchors) must already be fresh.
func (st *Stream) ensureCross(k, i, j int) {
	c := k*st.pairs + pairIndex(i, j, st.dbs)
	if st.crossOK[c] {
		return
	}
	base := c * st.lagStride
	for s := 0; s < st.lagStride; s++ {
		st.cross[base+s] = 0
	}
	for jj := 0; jj < st.n; jj++ {
		st.accumCross(k, c, i, j, jj)
	}
	st.crossOK[c] = true
}

// exactPair materializes the pair's windows (gaps as NaN) and scores them
// with the exact kernel — the fallback for gap-bearing windows and for
// delay budgets beyond the tracked depth, where the FFT delay scan takes
// over. Allocation-free once the scratch is warm.
func (st *Stream) exactPair(a, b int) float64 {
	x := st.copyWindow(a, st.winA)
	y := st.copyWindow(b, st.winB)
	opts := st.opts
	if !opts.UseFFT && opts.maxDelay(st.n) > MaxTrackedLag {
		opts.UseFFT = true
	}
	score, _ := KCDWithDelayScratch(x, y, opts, st.scratch)
	return score
}

// copyWindow linearizes one series' ring contents into dst.
func (st *Stream) copyWindow(sIdx int, dst []float64) []float64 {
	row := st.buf[sIdx*st.capacity : (sIdx+1)*st.capacity]
	dst = dst[:st.n]
	first := st.capacity - st.head
	if first >= st.n {
		copy(dst, row[st.head:st.head+st.n])
	} else {
		copy(dst, row[st.head:])
		copy(dst[first:], row[:st.n-first])
	}
	return dst
}

// scorePair evaluates the Eq. 2-4 delay scan for one gap-free pair from the
// rolling stats. With Sx/Sxx the overlap's (anchor-shifted) sum and sum of
// squares and mx the full-window mean, each overlap's centered moments are
//
//	num = Sxy − my·Sx − mx·Sy + L·mx·my
//	n_x = Sxx − 2·mx·Sx + L·mx²
//
// which equals the exact kernel's centered accumulation up to rounding; the
// same tieEps delay ordering and degenerate-window rules apply.
func (st *Stream) scorePair(k, i, j, m int) float64 {
	a := k*st.dbs + i
	b := k*st.dbs + j
	n := float64(st.n)
	sumA, sumB := st.sum[a], st.sum[b]
	mA, mB := sumA/n, sumB/n
	// tA is the full window's centered energy: Σ(x'−mx)² = Σx'² − mx·Σx'.
	tA := st.sumsq[a] - mA*sumA
	tB := st.sumsq[b] - mB*sumB
	// A window whose variance is rounding residue relative to its raw
	// energy is constant (min-max span 0 in the exact kernel's terms).
	constA := tA <= 1e-12*(st.sumsq[a]+1e-300)
	constB := tB <= 1e-12*(st.sumsq[b]+1e-300)
	if constA && constB {
		return 1
	}
	if constA || constB {
		return 0
	}
	epsA := 1e-12 * (tA + 1e-300)
	epsB := 1e-12 * (tB + 1e-300)
	base := (k*st.pairs + pairIndex(i, j, st.dbs)) * st.lagStride
	offA := a * st.maxLag
	offB := b * st.maxLag
	best := math.Inf(-1)
	for idx := 0; idx <= 2*m; idx++ {
		s := delayAt(idx)
		var sx, sxx, sy, syy, cr, lov float64
		if s >= 0 {
			// x[s:] against y[:n-s]: suffix of a, prefix of b.
			lov = float64(st.n - s)
			if s == 0 {
				sx, sxx = sumA, st.sumsq[a]
				sy, syy = sumB, st.sumsq[b]
				cr = st.cross[base]
			} else {
				sx, sxx = st.suf[offA+s-1], st.sufSq[offA+s-1]
				sy, syy = st.pre[offB+s-1], st.preSq[offB+s-1]
				cr = st.cross[base+s]
			}
		} else {
			// x[:n+s] against y[-s:]: prefix of a, suffix of b.
			t := -s
			lov = float64(st.n - t)
			sx, sxx = st.pre[offA+t-1], st.preSq[offA+t-1]
			sy, syy = st.suf[offB+t-1], st.sufSq[offB+t-1]
			cr = st.cross[base+st.maxLag+t]
		}
		num := cr - mB*sx - mA*sy + lov*mA*mB
		nx := sxx - 2*mA*sx + lov*mA*mA
		ny := syy - 2*mB*sy + lov*mB*mB
		score := safeRatio(num, nx, ny, epsA, epsB)
		if score > best+tieEps {
			best = score
		}
	}
	return best
}
