// Package correlate implements the paper's time-series correlation
// measurement: the Key Correlation Distance (KCD, Eq. 1-4), the per-KPI
// correlation matrices (Eq. 5), and the alternative correlation measures
// DBCatcher is compared against (Pearson, Spearman, dynamic time warping).
package correlate

import (
	"math"

	"dbcatcher/internal/mathx"
)

// Options configures a KCD computation.
type Options struct {
	// MaxDelayFraction bounds the delay scan: the maximum |s| is
	// round(fraction * n). The paper uses m = n/2 (s ∈ [1, m], n = 2m).
	// Values <= 0 default to 0.5.
	MaxDelayFraction float64
	// MaxDelayPoints, when positive, additionally caps the scanned delay
	// at an absolute number of points. Collection delays are small and
	// "essentially the same in a time window" (§IV-D1), so capping the
	// scan at the realistic delay bound sharpens the contrast between
	// correlated and deviating windows: an unconstrained scan lets an
	// abnormal window rescue itself by aligning at some large spurious
	// lag. The detection pipeline uses 4; 0 disables the cap.
	MaxDelayPoints int
	// UseFFT selects the O(n log n) cross-correlation path instead of the
	// direct O(n·m) scan. Both produce identical scores.
	UseFFT bool
	// Normalize applies min-max scaling (Eq. 1) before correlating. The
	// paper always normalizes; tests may disable it.
	Normalize bool
}

// DefaultOptions mirrors the paper's setup: scan delays up to n/2 on
// min-max-normalized windows using the direct path.
func DefaultOptions() Options {
	return Options{MaxDelayFraction: 0.5, Normalize: true}
}

// DetectionOptions is the configuration the detection pipeline uses: the
// n/2 scan capped at ±4 points, covering realistic collection delays
// without letting spurious lag alignments mask anomalies.
func DetectionOptions() Options {
	return Options{MaxDelayFraction: 0.5, MaxDelayPoints: 4, Normalize: true}
}

// IsZero reports whether o is the zero configuration. Facade callers use
// it as the "unset" sentinel when deciding whether an Options field was an
// explicit override; pair it with an explicit use-flag when the zero
// configuration itself must be selectable.
func (o Options) IsZero() bool { return o == Options{} }

func (o Options) maxDelay(n int) int {
	f := o.MaxDelayFraction
	if f <= 0 {
		f = 0.5
	}
	m := int(f * float64(n))
	if o.MaxDelayPoints > 0 && m > o.MaxDelayPoints {
		m = o.MaxDelayPoints
	}
	if m >= n {
		m = n - 1
	}
	if m < 0 {
		m = 0
	}
	return m
}

// KCD returns the Key Correlation Distance between two aligned windows of
// equal length: the maximum, over point-in-time delays s with |s| <= m, of
// the normalized correlation between the overlapping portions (Eq. 2-4).
// The score lies in [-1, 1]; values near 1 mean the trends correlate, low
// values indicate abnormal divergence.
//
// Degenerate windows: if both windows are constant the trends trivially
// agree and KCD is 1; if exactly one is constant KCD is 0.
func KCD(x, y []float64, opts Options) float64 {
	score, _ := KCDWithDelay(x, y, opts)
	return score
}

// KCDWithDelay is KCD but also reports the delay s at which the maximum
// correlation was found (positive s means x lags y).
func KCDWithDelay(x, y []float64, opts Options) (score float64, delay int) {
	return KCDWithDelayScratch(x, y, opts, nil)
}

// Scratch holds the reusable working buffers of a KCD computation
// (normalized/centered copies and, on the FFT path, prefix sums of
// squares), so that steady-state correlation passes allocate nothing. A
// Scratch must not be shared between goroutines; the matrix Engine keeps
// one per worker.
type Scratch struct {
	xc, yc []float64
	px, py []float64
	fft    *mathx.FFTScratch
	// windows stages per-database window slices during a matrix build.
	windows [][]float64
}

// NewScratch returns an empty scratch; buffers grow on first use and are
// reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// grow sizes the centered-window buffers for length-n windows.
func (s *Scratch) grow(n int) {
	if cap(s.xc) < n {
		s.xc = make([]float64, n)
		s.yc = make([]float64, n)
	}
	s.xc = s.xc[:n]
	s.yc = s.yc[:n]
}

// growPrefix sizes the prefix-sum buffers used by the FFT path.
func (s *Scratch) growPrefix(n int) {
	if cap(s.px) < n+1 {
		s.px = make([]float64, n+1)
		s.py = make([]float64, n+1)
	}
	s.px = s.px[:n+1]
	s.py = s.py[:n+1]
}

// growWindows sizes the window staging area for a d-database unit.
func (s *Scratch) growWindows(d int) [][]float64 {
	if cap(s.windows) < d {
		s.windows = make([][]float64, d)
	}
	s.windows = s.windows[:d]
	return s.windows
}

// KCDWithDelayScratch is KCDWithDelay computing through caller-owned
// scratch buffers: with a reused Scratch the direct path performs no
// allocations. A nil scratch allocates a transient one, making it
// equivalent to KCDWithDelay. Scores and delays are bit-identical to the
// allocating path.
func KCDWithDelayScratch(x, y []float64, opts Options, s *Scratch) (score float64, delay int) {
	n := len(x)
	if len(y) != n {
		panic(mathx.ErrLengthMismatch)
	}
	if n == 0 {
		return 0, 0
	}
	if s == nil {
		s = NewScratch()
	}
	s.grow(n)
	copy(s.xc, x)
	copy(s.yc, y)
	// Collector gaps arrive as NaN points; repair them in the scratch copy
	// so a few holes degrade the score gracefully instead of poisoning the
	// normalization and every overlap they touch. Gap-free windows take the
	// early-exit scan and compute bit-identical scores.
	repairGaps(s.xc)
	repairGaps(s.yc)
	if opts.Normalize {
		mathx.NormalizeInto(s.xc, s.xc)
		mathx.NormalizeInto(s.yc, s.yc)
	}
	// Center by the full-window means (ave(x), ave(y) in Eq. 3).
	mx, my := mathx.Mean(s.xc), mathx.Mean(s.yc)
	for i := 0; i < n; i++ {
		s.xc[i] -= mx
		s.yc[i] -= my
	}
	constX := allZero(s.xc)
	constY := allZero(s.yc)
	if constX && constY {
		return 1, 0
	}
	if constX || constY {
		return 0, 0
	}
	m := opts.maxDelay(n)
	if opts.UseFFT {
		return kcdFFT(s.xc, s.yc, m, s)
	}
	return kcdDirect(s.xc, s.yc, m)
}

// repairGaps fills NaN holes in place: interior runs are linearly
// interpolated between their surviving neighbours, leading/trailing runs
// hold the nearest surviving value, and an all-gap window becomes all
// zeros (a constant series, which the degenerate-window rules already
// handle). It allocates nothing and reports whether any repair happened.
func repairGaps(v []float64) bool {
	n := len(v)
	i := 0
	for i < n && !math.IsNaN(v[i]) {
		i++
	}
	if i == n {
		return false // fast path: no gaps
	}
	for i < n {
		if !math.IsNaN(v[i]) {
			i++
			continue
		}
		runStart := i
		for i < n && math.IsNaN(v[i]) {
			i++
		}
		// Gap run [runStart, i); left neighbour at runStart-1, right at i.
		switch {
		case runStart == 0 && i == n:
			for j := range v {
				v[j] = 0
			}
		case runStart == 0:
			for j := 0; j < i; j++ {
				v[j] = v[i]
			}
		case i == n:
			for j := runStart; j < n; j++ {
				v[j] = v[runStart-1]
			}
		default:
			left, right := v[runStart-1], v[i]
			span := float64(i - runStart + 1)
			for j := runStart; j < i; j++ {
				frac := float64(j-runStart+1) / span
				v[j] = left + (right-left)*frac
			}
		}
	}
	return true
}

func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// tieEps breaks ties in the delay scan: a longer delay must beat the
// incumbent by more than this to win, so that among equally good alignments
// (e.g. one signal period apart) the smallest |s| is reported.
const tieEps = 1e-12

// delayAt maps a scan index to the delay sequence 0, 1, -1, 2, -2, ...,
// m, -m, so that combined with tieEps the smallest-magnitude delay wins
// ties without materializing the order as a slice.
func delayAt(idx int) int {
	if idx == 0 {
		return 0
	}
	d := (idx + 1) / 2
	if idx%2 == 1 {
		return d
	}
	return -d
}

// kcdDirect scans delays with the straightforward O(n·m) loop.
func kcdDirect(xc, yc []float64, m int) (float64, int) {
	n := len(xc)
	epsX, epsY := energyEps(xc), energyEps(yc)
	best := math.Inf(-1)
	bestDelay := 0
	for idx := 0; idx <= 2*m; idx++ {
		s := delayAt(idx)
		var num, nx, ny float64
		if s >= 0 {
			// Compare x[s:] against y[:n-s] (Eq. 2, Eq. 3 first case).
			for i := 0; i < n-s; i++ {
				a, b := xc[i+s], yc[i]
				num += a * b
				nx += a * a
				ny += b * b
			}
		} else {
			// Eq. 3 second case: x[:n+s] against y[-s:].
			for i := 0; i < n+s; i++ {
				a, b := xc[i], yc[i-s]
				num += a * b
				nx += a * a
				ny += b * b
			}
		}
		score := safeRatio(num, nx, ny, epsX, epsY)
		if score > best+tieEps {
			best = score
			bestDelay = s
		}
	}
	return best, bestDelay
}

// kcdFFT computes every lag's numerator with one FFT cross-correlation and
// the per-lag norms from prefix sums of squares, for O(n log n) total. Both
// the frequency-domain buffers and the prefix sums come from the scratch,
// so a warm FFT delay scan allocates nothing.
func kcdFFT(xc, yc []float64, m int, s *Scratch) (float64, int) {
	n := len(xc)
	if s.fft == nil {
		s.fft = mathx.NewFFTScratch()
	}
	// full[k + n - 1] = sum_i xc[i+k]*yc[i].
	full := mathx.CrossCorrelateFFTInto(xc, yc, s.fft)
	// Prefix sums of squares: px[i] = sum of xc[0:i]^2.
	s.growPrefix(n)
	px, py := s.px, s.py
	px[0], py[0] = 0, 0
	for i := 0; i < n; i++ {
		px[i+1] = px[i] + xc[i]*xc[i]
		py[i+1] = py[i] + yc[i]*yc[i]
	}
	epsX, epsY := energyEps(xc), energyEps(yc)
	best := math.Inf(-1)
	bestDelay := 0
	for idx := 0; idx <= 2*m; idx++ {
		d := delayAt(idx)
		num := full[d+n-1]
		var nx, ny float64
		if d >= 0 {
			nx = px[n] - px[d]   // xc[d:]
			ny = py[n-d] - py[0] // yc[:n-d]
		} else {
			nx = px[n+d] - px[0] // xc[:n+d]
			ny = py[n] - py[-d]  // yc[-d:]
		}
		score := safeRatio(num, nx, ny, epsX, epsY)
		if score > best+tieEps {
			best = score
			bestDelay = d
		}
	}
	return best, bestDelay
}

// energyEps returns the threshold below which an overlap's energy counts
// as zero variance. It is relative to the window's total energy so that
// floating-point residue (e.g. a segment exactly equal to the window
// mean, whose centered values are pure roundoff) cannot masquerade as
// signal and produce a spurious perfect correlation.
func energyEps(c []float64) float64 {
	var total float64
	for _, v := range c {
		total += v * v
	}
	return 1e-12 * (total + 1e-300)
}

// safeRatio computes num / (sqrt(nx)·sqrt(ny)) treating (numerically)
// zero-variance overlaps as uncorrelated, and clamps rounding noise into
// [-1, 1].
func safeRatio(num, nx, ny, epsX, epsY float64) float64 {
	if nx <= epsX || ny <= epsY {
		return 0
	}
	return mathx.Clamp(num/(math.Sqrt(nx)*math.Sqrt(ny)), -1, 1)
}
