package correlate

import (
	"math"
	"testing"
	"testing/quick"

	"dbcatcher/internal/mathx"
)

func sine(n int, period float64, phase float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2*math.Pi*float64(i)/period + phase)
	}
	return out
}

func TestKCDIdenticalSeries(t *testing.T) {
	x := sine(64, 16, 0)
	got := KCD(x, x, DefaultOptions())
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("KCD(x, x) = %v, want 1", got)
	}
}

func TestKCDScaledSeries(t *testing.T) {
	// Min-max normalization makes KCD invariant to affine scaling.
	x := sine(64, 16, 0)
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 100 + 42*x[i]
	}
	got := KCD(x, y, DefaultOptions())
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("KCD of affinely scaled copy = %v, want 1", got)
	}
}

func TestKCDRecoversDelay(t *testing.T) {
	// y is x delayed by 5 points; KCD must find the alignment and report
	// the delay.
	n := 80
	base := sine(n+10, 20, 0)
	x := base[5 : 5+n] // x leads
	y := base[:n]      // y is x delayed by 5
	score, delay := KCDWithDelay(x, y, DefaultOptions())
	if score < 0.999 {
		t.Fatalf("KCD with delay = %v, want ~1", score)
	}
	if delay != -5 {
		t.Fatalf("recovered delay = %d, want -5", delay)
	}
	// Swap roles: now the delay flips sign.
	score2, delay2 := KCDWithDelay(y, x, DefaultOptions())
	if score2 < 0.999 || delay2 != 5 {
		t.Fatalf("swapped: score=%v delay=%d, want ~1 and 5", score2, delay2)
	}
}

func TestKCDBeatsPearsonUnderDelay(t *testing.T) {
	// The motivating claim of §II-D: with a point-in-time delay Pearson
	// degrades but KCD stays high.
	n := 100
	base := sine(n+8, 12, 0)
	x := base[8 : 8+n]
	y := base[:n]
	p := Pearson(mathx.Normalize(x), mathx.Normalize(y))
	k := KCD(x, y, DefaultOptions())
	if k < 0.99 {
		t.Fatalf("KCD = %v, want ~1 despite delay", k)
	}
	if k-p < 0.2 {
		t.Fatalf("KCD (%v) should clearly beat Pearson (%v) under delay", k, p)
	}
}

func TestKCDAnticorrelatedSeries(t *testing.T) {
	x := sine(64, 64, 0)       // single slow cycle
	y := sine(64, 64, math.Pi) // inverted
	got := KCD(x, y, Options{MaxDelayFraction: 0.05, Normalize: true})
	if got > 0 {
		t.Fatalf("KCD of anti-phase series with tiny delay budget = %v, want <= 0", got)
	}
}

func TestKCDConstantRules(t *testing.T) {
	c := []float64{5, 5, 5, 5}
	v := []float64{1, 2, 3, 4}
	if got := KCD(c, mathx.Clone(c), DefaultOptions()); got != 1 {
		t.Fatalf("both constant = %v, want 1", got)
	}
	if got := KCD(c, v, DefaultOptions()); got != 0 {
		t.Fatalf("one constant = %v, want 0", got)
	}
	if got := KCD(nil, nil, DefaultOptions()); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

func TestKCDPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KCD([]float64{1}, []float64{1, 2}, DefaultOptions())
}

func TestKCDFFTMatchesDirect(t *testing.T) {
	rng := mathx.NewRNG(21)
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(120)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Norm()
			y[i] = 0.5*x[i] + rng.Norm()
		}
		d := Options{MaxDelayFraction: 0.5, Normalize: true}
		f := Options{MaxDelayFraction: 0.5, Normalize: true, UseFFT: true}
		sd, dd := KCDWithDelay(x, y, d)
		sf, df := KCDWithDelay(x, y, f)
		if math.Abs(sd-sf) > 1e-9 {
			t.Fatalf("trial %d: direct %v vs FFT %v", trial, sd, sf)
		}
		if dd != df {
			t.Fatalf("trial %d: direct delay %d vs FFT delay %d", trial, dd, df)
		}
	}
}

func TestKCDSymmetricInScoreProperty(t *testing.T) {
	// KCD(x, y) == KCD(y, x): the delay scan is symmetric in sign.
	f := func(seed uint32, nRaw uint8) bool {
		rng := mathx.NewRNG(uint64(seed))
		n := int(nRaw%60) + 4
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Norm()
			y[i] = rng.Norm()
		}
		a := KCD(x, y, DefaultOptions())
		b := KCD(y, x, DefaultOptions())
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKCDBoundsProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		rng := mathx.NewRNG(uint64(seed))
		n := int(nRaw%80) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Range(-10, 10)
			y[i] = rng.Range(-10, 10)
		}
		got := KCD(x, y, DefaultOptions())
		return got >= -1-1e-9 && got <= 1+1e-9 && !math.IsNaN(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKCDMaxDelayZeroEqualsPearsonOnNormalized(t *testing.T) {
	rng := mathx.NewRNG(33)
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = rng.Norm()
		y[i] = rng.Norm()
	}
	k := KCD(x, y, Options{MaxDelayFraction: 1e-9, Normalize: true})
	p := Pearson(mathx.Normalize(x), mathx.Normalize(y))
	if math.Abs(k-p) > 1e-9 {
		t.Fatalf("zero-delay KCD %v != Pearson %v", k, p)
	}
}

func TestOptionsMaxDelay(t *testing.T) {
	o := Options{MaxDelayFraction: 0.5}
	if got := o.maxDelay(20); got != 10 {
		t.Fatalf("maxDelay(20) = %d, want 10", got)
	}
	o = Options{} // default fraction
	if got := o.maxDelay(20); got != 10 {
		t.Fatalf("default maxDelay(20) = %d, want 10", got)
	}
	o = Options{MaxDelayFraction: 2}
	if got := o.maxDelay(4); got != 3 {
		t.Fatalf("clamped maxDelay(4) = %d, want 3", got)
	}
}

func TestMaxDelayPointsCap(t *testing.T) {
	o := Options{MaxDelayFraction: 0.5, MaxDelayPoints: 4}
	if got := o.maxDelay(100); got != 4 {
		t.Fatalf("capped maxDelay(100) = %d, want 4", got)
	}
	if got := o.maxDelay(6); got != 3 {
		t.Fatalf("small-window maxDelay(6) = %d, want 3 (fraction binds)", got)
	}
	if got := DetectionOptions().maxDelay(60); got != 4 {
		t.Fatalf("DetectionOptions maxDelay(60) = %d, want 4", got)
	}
}

func TestDetectionOptionsStillFindSmallDelays(t *testing.T) {
	// Collection delays in the simulator are 0-2 ticks; the capped scan
	// must still recover them.
	n := 80
	base := sine(n+4, 16, 0)
	x := base[2 : 2+n]
	y := base[:n]
	score, delay := KCDWithDelay(x, y, DetectionOptions())
	if score < 0.999 || delay != -2 {
		t.Fatalf("capped scan: score=%v delay=%d, want ~1 and -2", score, delay)
	}
}

func TestRepairGaps(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"no gaps", []float64{1, 2, 3}, []float64{1, 2, 3}},
		{"interior run", []float64{1, nan, nan, 4}, []float64{1, 2, 3, 4}},
		{"single interior", []float64{0, nan, 2}, []float64{0, 1, 2}},
		{"leading run", []float64{nan, nan, 3, 4}, []float64{3, 3, 3, 4}},
		{"trailing run", []float64{1, 2, nan, nan}, []float64{1, 2, 2, 2}},
		{"all gaps", []float64{nan, nan, nan}, []float64{0, 0, 0}},
		{"two runs", []float64{nan, 2, nan, 4, nan}, []float64{2, 2, 3, 4, 4}},
	}
	for _, tc := range cases {
		got := append([]float64(nil), tc.in...)
		repaired := repairGaps(got)
		if !mathx.EqualApprox(got, tc.want, 1e-12) {
			t.Errorf("%s: repairGaps = %v, want %v", tc.name, got, tc.want)
		}
		hadGap := false
		for _, v := range tc.in {
			if math.IsNaN(v) {
				hadGap = true
			}
		}
		if repaired != hadGap {
			t.Errorf("%s: repaired = %v, want %v", tc.name, repaired, hadGap)
		}
	}
}

// A few holes must not poison the score: KCD over a gapped copy of a clean
// signal stays close to the clean self-correlation.
func TestKCDGapTolerance(t *testing.T) {
	x := sine(64, 16, 0)
	y := append([]float64(nil), x...)
	for _, i := range []int{5, 6, 30, 63} {
		y[i] = math.NaN()
	}
	got := KCD(x, y, DetectionOptions())
	if got < 0.98 {
		t.Fatalf("KCD with 4 repaired holes = %v, want near 1", got)
	}
	// Equal gaps on both sides behave the same.
	x2 := append([]float64(nil), x...)
	x2[10] = math.NaN()
	if s := KCD(x2, x2, DetectionOptions()); math.Abs(s-1) > 1e-9 {
		t.Fatalf("KCD(gapped, same gapped) = %v, want 1", s)
	}
	// All-gap vs signal: one side constant after repair -> uncorrelated.
	allGap := make([]float64, 64)
	for i := range allGap {
		allGap[i] = math.NaN()
	}
	if s := KCD(x, allGap, DetectionOptions()); s != 0 {
		t.Fatalf("KCD(signal, all-gap) = %v, want 0", s)
	}
}

// Gap-free scores must be bit-identical to the pre-gap-tolerance path, and
// the warm scratch path must stay allocation-free even when repairing gaps.
func TestKCDScratchGapRepairAllocFree(t *testing.T) {
	x := sine(60, 20, 0)
	y := append([]float64(nil), sine(60, 20, 0.3)...)
	y[7] = math.NaN()
	y[8] = math.NaN()
	s := NewScratch()
	KCDWithDelayScratch(x, y, DetectionOptions(), s) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		KCDWithDelayScratch(x, y, DetectionOptions(), s)
	})
	if allocs != 0 {
		t.Fatalf("warm gap-repairing KCD allocates %v/op, want 0", allocs)
	}
}
