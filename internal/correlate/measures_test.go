package correlate

import (
	"math"
	"testing"

	"dbcatcher/internal/mathx"
)

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Pearson(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson(x,x) = %v", got)
	}
	y := []float64{5, 4, 3, 2, 1}
	if got := Pearson(x, y); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson inverted = %v, want -1", got)
	}
	if got := Pearson([]float64{2, 2, 2}, []float64{2, 2, 2}); got != 1 {
		t.Fatalf("both constant = %v, want 1", got)
	}
	if got := Pearson([]float64{2, 2, 2}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("one constant = %v, want 0", got)
	}
}

func TestSpearmanMonotonicTransform(t *testing.T) {
	// Spearman is invariant under strictly monotone transforms.
	x := []float64{1, 3, 2, 8, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // monotone
	}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman of monotone transform = %v, want 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	// With average ranks, {1,2,2,3} ranks to {1, 2.5, 2.5, 4}.
	r := ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	if !mathx.EqualApprox(r, want, 1e-12) {
		t.Fatalf("ranks = %v, want %v", r, want)
	}
}

func TestDTWDistanceIdentity(t *testing.T) {
	x := sine(32, 8, 0)
	if got := DTWDistance(x, x, -1); got != 0 {
		t.Fatalf("DTW(x,x) = %v, want 0", got)
	}
}

func TestDTWDistanceWarpsDelay(t *testing.T) {
	// DTW should align a shifted copy nearly perfectly, while the
	// Euclidean distance stays large.
	base := sine(70, 14, 0)
	x := base[:64]
	y := base[4:68]
	dtw := DTWDistance(x, y, -1)
	var euclid float64
	for i := range x {
		d := x[i] - y[i]
		euclid += d * d
	}
	euclid = math.Sqrt(euclid)
	if dtw > euclid/4 {
		t.Fatalf("DTW %v should be far below Euclidean %v", dtw, euclid)
	}
}

func TestDTWBandLimits(t *testing.T) {
	x := []float64{0, 0, 0, 1}
	y := []float64{1, 0, 0, 0}
	wide := DTWDistance(x, y, -1)
	tight := DTWDistance(x, y, 0)
	if wide > tight {
		t.Fatalf("wider band must not increase distance: wide=%v tight=%v", wide, tight)
	}
}

func TestDTWDifferentLengths(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{0, 2, 4}
	d := DTWDistance(x, y, 1) // radius below length gap must auto-widen
	if math.IsInf(d, 1) {
		t.Fatal("band too narrow for length difference; should auto-widen")
	}
}

func TestDTWSimilarityRange(t *testing.T) {
	x := sine(32, 8, 0)
	if got := DTWSimilarity(x, x, -1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self-similarity = %v, want 1", got)
	}
	rng := mathx.NewRNG(9)
	y := make([]float64, 32)
	for i := range y {
		y[i] = rng.Norm()
	}
	got := DTWSimilarity(x, y, -1)
	if got <= 0 || got >= 1 {
		t.Fatalf("similarity = %v, want in (0, 1)", got)
	}
	if DTWSimilarity(nil, nil, -1) != 0 {
		t.Fatal("empty similarity should be 0")
	}
}

func TestDTWEmpty(t *testing.T) {
	if !math.IsInf(DTWDistance(nil, []float64{1}, -1), 1) {
		t.Fatal("empty DTW distance should be +Inf")
	}
}
