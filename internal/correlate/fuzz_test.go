package correlate

import (
	"math"
	"testing"
)

// FuzzKCD drives the delay scan with arbitrary byte-derived windows: the
// score must always be a finite value in [-1, 1] and symmetric, for both
// the direct and FFT paths.
func FuzzKCD(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1})
	f.Add([]byte{0, 0, 0, 0}, []byte{1, 1, 1, 1})
	f.Add([]byte{255}, []byte{0})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 256 {
			return
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = float64(a[i]) - 100
			y[i] = float64(b[i]) * 3
		}
		// One scratch reused across every option set and both argument
		// orders: stale buffer contents must never leak into a result.
		scratch := NewScratch()
		for _, opts := range []Options{DefaultOptions(), DetectionOptions(),
			{MaxDelayFraction: 0.5, Normalize: true, UseFFT: true}} {
			s, d := KCDWithDelay(x, y, opts)
			if math.IsNaN(s) || s < -1-1e-9 || s > 1+1e-9 {
				t.Fatalf("KCD out of range: %v (opts %+v)", s, opts)
			}
			if r := KCD(y, x, opts); math.Abs(r-s) > 1e-9 {
				t.Fatalf("asymmetric: %v vs %v", s, r)
			}
			// The scratch-buffer path must be bit-identical to the
			// allocating path, score and delay both.
			ss, sd := KCDWithDelayScratch(x, y, opts, scratch)
			if ss != s || sd != d {
				t.Fatalf("scratch path diverged: (%v, %v) vs (%v, %v) (opts %+v)",
					ss, sd, s, d, opts)
			}
		}
	})
}
