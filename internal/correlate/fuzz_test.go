package correlate

import (
	"math"
	"testing"
)

// FuzzStreamKCD drives the streaming tier with byte-derived push/gap/drop
// sequences on a single pair and checks the invariants the detector relies
// on: scores stay finite in [-1, 1] and track the exact kernel over the
// materialized window within the documented fast-math bound (bit-identical
// whenever the window carries a gap, since that routes the exact kernel).
func FuzzStreamKCD(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80})
	f.Add([]byte{255, 0, 255, 0, 255})
	f.Add([]byte{1, 2, 3, 254, 4, 5, 253, 6})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 || len(ops) > 512 {
			return
		}
		const capacity = 24
		opts := DetectionOptions()
		st, err := NewStream(1, 2, opts, capacity)
		if err != nil {
			t.Fatal(err)
		}
		st.RebuildEvery = 5
		var xs, ys []float64 // absolute history
		sample := [][]float64{{0, 0}}
		mats := []*Matrix{NewMatrix(2)}
		for _, op := range ops {
			switch {
			case op == 254 && st.Len() > 0:
				st.Drop(1)
			case op == 253:
				st.Invalidate()
			default:
				x := float64(op) - 100
				y := 3 * float64(op%97)
				if op == 255 {
					x = math.NaN()
				}
				xs = append(xs, x)
				ys = append(ys, y)
				sample[0][0], sample[0][1] = x, y
				if err := st.Push(sample); err != nil {
					t.Fatal(err)
				}
			}
			if st.Len() == 0 {
				continue
			}
			if err := st.ScoreInto(mats, nil); err != nil {
				t.Fatal(err)
			}
			got := mats[0].At(0, 1)
			if math.IsNaN(got) || got < -1-1e-9 || got > 1+1e-9 {
				t.Fatalf("stream score out of range: %v", got)
			}
			want, _ := KCDWithDelay(xs[st.Base():st.End()], ys[st.Base():st.End()], opts)
			if st.GapCells() > 0 {
				if got != want {
					t.Fatalf("gap window diverged from exact kernel: %v vs %v", got, want)
				}
			} else if math.Abs(got-want) > 1e-9 {
				t.Fatalf("stream diverged: %v vs exact %v (n=%d)", got, want, st.Len())
			}
		}
	})
}

// FuzzKCD drives the delay scan with arbitrary byte-derived windows: the
// score must always be a finite value in [-1, 1] and symmetric, for both
// the direct and FFT paths.
func FuzzKCD(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1})
	f.Add([]byte{0, 0, 0, 0}, []byte{1, 1, 1, 1})
	f.Add([]byte{255}, []byte{0})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 256 {
			return
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = float64(a[i]) - 100
			y[i] = float64(b[i]) * 3
		}
		// One scratch reused across every option set and both argument
		// orders: stale buffer contents must never leak into a result.
		scratch := NewScratch()
		for _, opts := range []Options{DefaultOptions(), DetectionOptions(),
			{MaxDelayFraction: 0.5, Normalize: true, UseFFT: true}} {
			s, d := KCDWithDelay(x, y, opts)
			if math.IsNaN(s) || s < -1-1e-9 || s > 1+1e-9 {
				t.Fatalf("KCD out of range: %v (opts %+v)", s, opts)
			}
			if r := KCD(y, x, opts); math.Abs(r-s) > 1e-9 {
				t.Fatalf("asymmetric: %v vs %v", s, r)
			}
			// The scratch-buffer path must be bit-identical to the
			// allocating path, score and delay both.
			ss, sd := KCDWithDelayScratch(x, y, opts, scratch)
			if ss != s || sd != d {
				t.Fatalf("scratch path diverged: (%v, %v) vs (%v, %v) (opts %+v)",
					ss, sd, s, d, opts)
			}
		}
	})
}
