// Package detect implements DBCatcher's streaming detection module
// (§III-A): it consumes a unit's multivariate KPI series window by window,
// computes per-KPI correlation matrices, maps them to correlation levels,
// determines each database's state, and drives the flexible time window
// when the verdict is "observable".
package detect

import (
	"fmt"
	"sync"
	"time"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
)

// Config parameterizes a detection pass.
type Config struct {
	// Thresholds is the judgment parameter set (α_i, θ, tolerance).
	Thresholds window.Thresholds
	// Flex configures the flexible time window; zero value means
	// window.DefaultFlexConfig().
	Flex window.FlexConfig
	// Measure is the pairwise correlation measure; nil means KCD with
	// detection-default options (the allocation-lean engine path). A
	// non-nil measure must be safe for concurrent use unless Workers is 1.
	Measure correlate.Measure
	// KCDOptions overrides the KCD configuration used when Measure is
	// nil. The pointer distinguishes "unset" from an explicit zero-valued
	// override.
	KCDOptions *correlate.Options
	// Workers bounds the correlation fan-out per window: 0 uses
	// GOMAXPROCS, 1 forces the serial path. Results are identical at any
	// setting; callers that already parallelize across units (the fleet
	// runner) pin this to 1 to avoid nested pools.
	Workers int
	// Active marks databases that participate; nil means all.
	Active []bool
	// Streaming selects the incremental streaming KCD tier: per-pair
	// rolling statistics updated in O(1) per tick instead of an O(W)
	// recompute per round. It is an explicit fast-math opt-in — scores
	// match the exact recompute mathematically (KCD is invariant under the
	// min-max normalization's affine maps) but can differ by a documented
	// O(ε·κ) rounding bound (see correlate.Stream), so verdict streams are
	// expected, not guaranteed, to be identical. Gap-bearing windows still
	// route through the exact gap-repairing kernel bit-for-bit. Ignored
	// when Measure is non-nil (custom measures have no incremental form).
	Streaming bool
	// Primary is the index of the unit's primary database. KPIs whose
	// Table II correlation type is R-R are only judged among replicas:
	// the primary is neither scored on them nor used as a peer for them.
	// The default 0 matches the simulator's layout; set -1 when the unit
	// has no primary (all-replica read pool).
	Primary int
}

func (c Config) withDefaults() Config {
	if c.Flex == (window.FlexConfig{}) {
		c.Flex = window.DefaultFlexConfig()
	}
	return c
}

// Engine materializes the correlation engine the configuration describes:
// a custom measure when set, otherwise the allocation-lean KCD engine with
// the configured (or detection-default) options, sized by Workers.
func (c Config) Engine() *correlate.Engine {
	if c.Measure != nil {
		return correlate.NewMeasureEngine(c.Measure, c.Workers)
	}
	if c.KCDOptions != nil {
		return correlate.NewEngine(*c.KCDOptions, c.Workers)
	}
	return correlate.NewEngine(correlate.DetectionOptions(), c.Workers)
}

// Health qualifies how trustworthy a verdict is under lossy collection.
// Offline passes over complete series always emit HealthOK; the online
// monitor downgrades rounds whose input was damaged.
type Health int

const (
	// HealthOK: the round judged a complete window.
	HealthOK Health = iota
	// HealthDegraded: the round was judged, but some input points were
	// collector gaps (repaired by interpolation) or databases were
	// auto-deactivated for exceeding their gap budget.
	HealthDegraded
	// HealthSkipped: the round could not be judged at all — its window was
	// evicted during a collector outage, or too few databases remained
	// active to correlate. The covered range carries no judgment.
	HealthSkipped
)

// String names the health.
func (h Health) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// Verdict is the outcome of one judgment round: the window it covered and
// the final per-database states.
type Verdict struct {
	// Start is the first tick of the window; Size its final length after
	// any expansions.
	Start, Size int
	// States holds each database's terminal state (Healthy or Abnormal).
	States []window.State
	// Abnormal reports whether any database ended Abnormal.
	Abnormal bool
	// AbnormalDB is the lowest-indexed abnormal database, or -1.
	AbnormalDB int
	// Expansions counts how often the window grew during the round.
	Expansions int
	// Health qualifies the verdict under lossy collection (always
	// HealthOK for offline passes over complete series).
	Health Health
}

// Timing splits the cost of a pass between the correlation measurement and
// the window observation logic (§IV-D4 reports this 70/30).
type Timing struct {
	Correlation time.Duration
	Window      time.Duration
}

// Total returns the summed duration.
func (t Timing) Total() time.Duration { return t.Correlation + t.Window }

// MatrixProvider supplies the Q correlation matrices for a window. The
// indirection lets the adaptive threshold learner memoize matrices across
// fitness evaluations: scores do not depend on thresholds.
type MatrixProvider interface {
	// Matrices returns the per-KPI correlation matrices for the window
	// [start, start+size).
	Matrices(start, size int) ([]*correlate.Matrix, error)
	// Shape returns the number of ticks, KPIs, and databases.
	Shape() (ticks, kpis, databases int)
}

// seriesProvider computes matrices directly from a UnitSeries through a
// reusable correlation engine.
type seriesProvider struct {
	u      *timeseries.UnitSeries
	engine *correlate.Engine
	active []bool
}

// NewProvider wraps a unit series into an uncached MatrixProvider. A nil
// measure selects the allocation-lean KCD engine with detection defaults;
// a non-nil measure must be safe for concurrent use (the build fans out
// over GOMAXPROCS workers — use NewEngineProvider to bound it).
func NewProvider(u *timeseries.UnitSeries, measure correlate.Measure, active []bool) MatrixProvider {
	return NewEngineProvider(u, Config{Measure: measure}.Engine(), active)
}

// NewEngineProvider wraps a unit series and an explicit correlation engine
// into an uncached MatrixProvider.
func NewEngineProvider(u *timeseries.UnitSeries, engine *correlate.Engine, active []bool) MatrixProvider {
	return &seriesProvider{u: u, engine: engine, active: active}
}

func (p *seriesProvider) Matrices(start, size int) ([]*correlate.Matrix, error) {
	return p.engine.BuildMatrices(p.u, start, size, p.active)
}

func (p *seriesProvider) Shape() (int, int, int) {
	return p.u.Len(), p.u.KPIs, p.u.Databases
}

// DefaultCacheEntries bounds CachedProvider's memoization map. One entry
// holds one window's Q matrices (~Q·N²/2 floats); 512 covers every window
// the flexible policy can visit on multi-hour series while keeping the
// worst case a few megabytes even at fleet scale.
const DefaultCacheEntries = 512

// CachedProvider memoizes another provider's matrices by (start, size),
// bounded to a maximum entry count with oldest-first eviction (the GA
// re-visits the same windows every generation, so recency hardly matters —
// what matters is that long series cannot grow the map without limit). It
// is safe for concurrent use; the parallel threshold searchers share one
// per labelled unit.
type CachedProvider struct {
	inner MatrixProvider
	mu    sync.Mutex
	cache map[[2]int][]*correlate.Matrix
	order [][2]int // insertion order, for FIFO eviction
	max   int
	// Hits and Misses instrument cache effectiveness. Read them only once
	// concurrent use has quiesced.
	Hits, Misses int
}

// NewCachedProvider wraps inner with memoization bounded to
// DefaultCacheEntries.
func NewCachedProvider(inner MatrixProvider) *CachedProvider {
	return NewCachedProviderSize(inner, DefaultCacheEntries)
}

// NewCachedProviderSize is NewCachedProvider with an explicit entry cap;
// maxEntries <= 0 falls back to DefaultCacheEntries.
func NewCachedProviderSize(inner MatrixProvider, maxEntries int) *CachedProvider {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &CachedProvider{
		inner: inner,
		cache: make(map[[2]int][]*correlate.Matrix),
		max:   maxEntries,
	}
}

// Matrices implements MatrixProvider. Concurrent misses on the same key
// may compute the matrices twice; both results are identical and only one
// is retained.
func (c *CachedProvider) Matrices(start, size int) ([]*correlate.Matrix, error) {
	key := [2]int{start, size}
	c.mu.Lock()
	if m, ok := c.cache[key]; ok {
		c.Hits++
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	// Compute outside the lock so parallel fitness evaluations overlap.
	m, err := c.inner.Matrices(start, size)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.Misses++
	if _, ok := c.cache[key]; !ok {
		if len(c.cache) >= c.max {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.cache, oldest)
		}
		c.cache[key] = m
		c.order = append(c.order, key)
	}
	c.mu.Unlock()
	return m, nil
}

// Len returns the number of cached windows.
func (c *CachedProvider) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// Shape implements MatrixProvider.
func (c *CachedProvider) Shape() (int, int, int) { return c.inner.Shape() }

// Run performs an offline detection pass over the unit's full series and
// returns the sequence of verdicts. Consecutive rounds consume
// non-overlapping windows; a trailing stretch shorter than the initial
// window is left unjudged (the detection task blocks until enough points
// arrive, §IV-A3).
func Run(u *timeseries.UnitSeries, cfg Config) ([]Verdict, *Timing, error) {
	cfg = cfg.withDefaults()
	if cfg.Streaming && cfg.Measure == nil {
		r, err := NewStreamer(cfg, u.KPIs, u.Databases)
		if err != nil {
			return nil, nil, err
		}
		verdicts, err := r.RunAppend(u, nil)
		if err != nil {
			return nil, nil, err
		}
		t := r.Timing()
		return verdicts, &t, nil
	}
	return RunProvider(NewEngineProvider(u, cfg.Engine(), cfg.Active), cfg)
}

// RunProvider is Run against an arbitrary matrix source.
func RunProvider(p MatrixProvider, cfg Config) ([]Verdict, *Timing, error) {
	cfg = cfg.withDefaults()
	ticks, kpis, dbs := p.Shape()
	if err := cfg.Thresholds.Validate(kpis); err != nil {
		return nil, nil, err
	}
	if err := cfg.Flex.Validate(); err != nil {
		return nil, nil, err
	}
	flex, err := window.NewFlex(cfg.Flex)
	if err != nil {
		return nil, nil, err
	}
	// One judgment scratch and flex tracker per pass: the GA's fitness
	// evaluations run thousands of passes, so per-round buffers must not
	// be reallocated.
	js := NewJudgeScratch()
	verdicts := make([]Verdict, 0, ticks/cfg.Flex.Initial+1)
	timing := &Timing{}
	cursor := 0
	for cursor+cfg.Flex.Initial <= ticks {
		v, err := judgeRound(p, cfg, cursor, ticks, kpis, dbs, timing, flex, js)
		if err != nil {
			return nil, nil, err
		}
		verdicts = append(verdicts, v)
		cursor += v.Size
	}
	return verdicts, timing, nil
}

// judgeRound runs one flexible-window judgment starting at cursor.
func judgeRound(p MatrixProvider, cfg Config, cursor, ticks, kpis, dbs int, timing *Timing, flex *window.Flex, js *JudgeScratch) (Verdict, error) {
	flex.Reset()
	var expansions int
	for {
		size := flex.Size()
		if cursor+size > ticks {
			// Not enough data to expand further: re-judge at the previous
			// size and resolve as if the window budget were exhausted.
			size = flex.Size() - flexDelta(cfg.Flex)
			return finalizeAtSize(p, cfg, cursor, size, expansions, timing, js)
		}
		t0 := time.Now()
		mats, err := p.Matrices(cursor, size)
		if err != nil {
			return Verdict{}, err
		}
		timing.Correlation += time.Since(t0)

		t1 := time.Now()
		states := js.judge(mats, cfg, kpis, dbs)
		round := roundState(states)
		final, done := flex.Resolve(round)
		timing.Window += time.Since(t1)
		if done {
			// Exhaustion is the only path where the flex policy converts
			// a still-observable round into a terminal verdict.
			exhausted := round == window.Observable && final == cfg.Flex.ExhaustState && !cfg.Flex.Disabled
			return buildVerdict(cursor, size, states, cfg, expansions, exhausted), nil
		}
		expansions++
	}
}

// flexDelta mirrors FlexConfig's private delta default.
func flexDelta(c window.FlexConfig) int {
	if c.Delta == 0 {
		return c.Initial
	}
	return c.Delta
}

// finalizeAtSize re-computes the judgment at the given size and forces a
// terminal verdict (used when the series ends mid-expansion).
func finalizeAtSize(p MatrixProvider, cfg Config, cursor, size, expansions int, timing *Timing, js *JudgeScratch) (Verdict, error) {
	_, kpis, dbs := p.Shape()
	t0 := time.Now()
	mats, err := p.Matrices(cursor, size)
	if err != nil {
		return Verdict{}, err
	}
	timing.Correlation += time.Since(t0)
	t1 := time.Now()
	states := js.judge(mats, cfg, kpis, dbs)
	timing.Window += time.Since(t1)
	return buildVerdict(cursor, size, states, cfg, expansions, true), nil
}

// JudgeScratch holds the reusable buffers of a judgment step (per-database
// states, per-KPI levels, peer-score staging), so steady-state judging
// allocates nothing. Not safe for concurrent use; hold one per goroutine.
type JudgeScratch struct {
	states []window.State
	levels []window.Level
	peers  []float64
}

// NewJudgeScratch returns an empty scratch; buffers grow on first use.
func NewJudgeScratch() *JudgeScratch { return &JudgeScratch{} }

// Judge maps a window's correlation matrices to tentative per-database
// states (Algorithm 1 + Fig. 7), honouring each KPI's Table II correlation
// type: an R-R KPI is only judged among replicas. The returned slice is
// the scratch's internal buffer, valid until the next call; results are
// identical to JudgeMatrices.
func (js *JudgeScratch) Judge(mats []*correlate.Matrix, cfg Config, kpis, dbs int) []window.State {
	cfg = cfg.withDefaults()
	return js.judge(mats, cfg, kpis, dbs)
}

func (js *JudgeScratch) judge(mats []*correlate.Matrix, cfg Config, kpis, dbs int) []window.State {
	if cap(js.states) < dbs {
		js.states = make([]window.State, dbs)
	}
	states := js.states[:dbs]
	levels := js.levels[:0]
	for d := 0; d < dbs; d++ {
		if cfg.Active != nil && !cfg.Active[d] {
			// An unused database does not participate (§III-C).
			states[d] = window.Healthy
			continue
		}
		levels = levels[:0]
		for k := 0; k < kpis; k++ {
			rrOnly := isRROnly(k, kpis)
			if rrOnly && d == cfg.Primary {
				// The primary is not expected to correlate on this KPI.
				continue
			}
			js.peers = peerScoresInto(js.peers[:0], mats[k], d, cfg, rrOnly)
			levels = append(levels, window.KPILevel(js.peers, cfg.Thresholds.Alpha[k], cfg.Thresholds.Theta))
		}
		states[d] = window.DetermineState(levels, cfg.Thresholds.MaxTolerance)
	}
	js.levels = levels[:0]
	return states
}

// judgeStates is the allocating form of JudgeScratch.judge: a fresh
// scratch's buffers become the returned slice, so the caller owns it.
func judgeStates(mats []*correlate.Matrix, cfg Config, kpis, dbs int) []window.State {
	return NewJudgeScratch().judge(mats, cfg, kpis, dbs)
}

// isRROnly reports whether KPI index k correlates replica-replica only.
// The Table II typing applies when the provider carries the standard 14
// KPIs; nonstandard layouts treat every KPI as fully correlated.
func isRROnly(k, kpis int) bool {
	if kpis != kpi.Count {
		return false
	}
	return kpi.KPI(k).Correlation() == kpi.RR
}

// peerScoresInto extracts database d's scores against the peers it is
// expected to correlate with, appending into the caller's buffer.
func peerScoresInto(out []float64, m *correlate.Matrix, d int, cfg Config, rrOnly bool) []float64 {
	for i := 0; i < m.N; i++ {
		if i == d {
			continue
		}
		if cfg.Active != nil && !cfg.Active[i] {
			continue
		}
		if rrOnly && i == cfg.Primary {
			continue
		}
		out = append(out, m.At(i, d))
	}
	return out
}

// roundState reduces per-database states into the round's tentative state:
// any abnormal database ends the round abnormal; otherwise any observable
// database keeps the round observable; otherwise the round is healthy.
func roundState(states []window.State) window.State {
	round := window.Healthy
	for _, s := range states {
		if s == window.Abnormal {
			return window.Abnormal
		}
		if s == window.Observable {
			round = window.Observable
		}
	}
	return round
}

// finalizeStates resolves any lingering Observable database states into
// terminals. Only when the window budget was exhausted does Observable
// escalate to the configured exhaust state; when the round ended because
// another database turned Abnormal (or expansion is disabled), an
// unconfirmed Observable resolves to Healthy.
func finalizeStates(states []window.State, cfg window.FlexConfig, exhausted bool) []window.State {
	out := make([]window.State, len(states))
	for i, s := range states {
		if s == window.Observable {
			if exhausted && !cfg.Disabled {
				out[i] = cfg.ExhaustState
			} else {
				out[i] = window.Healthy
			}
		} else {
			out[i] = s
		}
	}
	return out
}

// buildVerdict resolves lingering Observable database states via the flex
// policy (exhaustion or disabled-expansion semantics) and assembles the
// round's verdict.
func buildVerdict(start, size int, states []window.State, cfg Config, expansions int, exhausted bool) Verdict {
	finals := finalizeStates(states, cfg.Flex, exhausted)
	v := Verdict{Start: start, Size: size, States: finals, AbnormalDB: -1, Expansions: expansions}
	for d, s := range finals {
		if s == window.Abnormal {
			v.Abnormal = true
			if v.AbnormalDB == -1 {
				v.AbnormalDB = d
			}
		}
	}
	return v
}

// AverageWindowSize returns the mean number of points consumed per
// verdict, the paper's efficiency metric.
func AverageWindowSize(verdicts []Verdict) float64 {
	if len(verdicts) == 0 {
		return 0
	}
	var sum float64
	for _, v := range verdicts {
		sum += float64(v.Size)
	}
	return sum / float64(len(verdicts))
}

// Evaluate scores verdicts against ground truth: a window counts as
// actually abnormal when any tick inside it is labelled abnormal (§IV-A3
// evaluates per time window).
func Evaluate(verdicts []Verdict, labels *anomaly.Labels) (metrics.Confusion, error) {
	var c metrics.Confusion
	for _, v := range verdicts {
		if v.Start < 0 || v.Start+v.Size > len(labels.Point) {
			return c, fmt.Errorf("detect: verdict [%d, %d) outside %d labels", v.Start, v.Start+v.Size, len(labels.Point))
		}
		actual := false
		for t := v.Start; t < v.Start+v.Size; t++ {
			if labels.Point[t] {
				actual = true
				break
			}
		}
		c.Add(v.Abnormal, actual)
	}
	return c, nil
}

// DiagnosisAccuracy reports how often the flagged database matches the
// labelled abnormal database, over true-positive windows.
func DiagnosisAccuracy(verdicts []Verdict, labels *anomaly.Labels) float64 {
	correct, total := 0, 0
	for _, v := range verdicts {
		if !v.Abnormal {
			continue
		}
		truth := -1
		for t := v.Start; t < v.Start+v.Size && t < len(labels.Point); t++ {
			if labels.DB[t] >= 0 {
				truth = labels.DB[t]
				break
			}
		}
		if truth == -1 {
			continue // false positive; not a diagnosis case
		}
		total++
		if v.AbnormalDB == truth {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// JudgeMatrices exposes one judgment step for streaming callers (the
// online monitor): it maps a window's correlation matrices to tentative
// per-database states.
func JudgeMatrices(mats []*correlate.Matrix, cfg Config, kpis, dbs int) []window.State {
	cfg = cfg.withDefaults()
	return judgeStates(mats, cfg, kpis, dbs)
}

// RoundState exposes the per-round reduction of database states.
func RoundState(states []window.State) window.State { return roundState(states) }

// FinalizeStates exposes terminal-state resolution for streaming callers.
func FinalizeStates(states []window.State, cfg window.FlexConfig, exhausted bool) []window.State {
	return finalizeStates(states, cfg, exhausted)
}
