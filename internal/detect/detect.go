// Package detect implements DBCatcher's streaming detection module
// (§III-A): it consumes a unit's multivariate KPI series window by window,
// computes per-KPI correlation matrices, maps them to correlation levels,
// determines each database's state, and drives the flexible time window
// when the verdict is "observable".
package detect

import (
	"fmt"
	"time"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
)

// Config parameterizes a detection pass.
type Config struct {
	// Thresholds is the judgment parameter set (α_i, θ, tolerance).
	Thresholds window.Thresholds
	// Flex configures the flexible time window; zero value means
	// window.DefaultFlexConfig().
	Flex window.FlexConfig
	// Measure is the pairwise correlation measure; nil means KCD with
	// default options.
	Measure correlate.Measure
	// Active marks databases that participate; nil means all.
	Active []bool
	// Primary is the index of the unit's primary database. KPIs whose
	// Table II correlation type is R-R are only judged among replicas:
	// the primary is neither scored on them nor used as a peer for them.
	// The default 0 matches the simulator's layout; set -1 when the unit
	// has no primary (all-replica read pool).
	Primary int
}

func (c Config) withDefaults() Config {
	if c.Flex == (window.FlexConfig{}) {
		c.Flex = window.DefaultFlexConfig()
	}
	if c.Measure == nil {
		c.Measure = correlate.KCDMeasure(correlate.DetectionOptions())
	}
	return c
}

// Verdict is the outcome of one judgment round: the window it covered and
// the final per-database states.
type Verdict struct {
	// Start is the first tick of the window; Size its final length after
	// any expansions.
	Start, Size int
	// States holds each database's terminal state (Healthy or Abnormal).
	States []window.State
	// Abnormal reports whether any database ended Abnormal.
	Abnormal bool
	// AbnormalDB is the lowest-indexed abnormal database, or -1.
	AbnormalDB int
	// Expansions counts how often the window grew during the round.
	Expansions int
}

// Timing splits the cost of a pass between the correlation measurement and
// the window observation logic (§IV-D4 reports this 70/30).
type Timing struct {
	Correlation time.Duration
	Window      time.Duration
}

// Total returns the summed duration.
func (t Timing) Total() time.Duration { return t.Correlation + t.Window }

// MatrixProvider supplies the Q correlation matrices for a window. The
// indirection lets the adaptive threshold learner memoize matrices across
// fitness evaluations: scores do not depend on thresholds.
type MatrixProvider interface {
	// Matrices returns the per-KPI correlation matrices for the window
	// [start, start+size).
	Matrices(start, size int) ([]*correlate.Matrix, error)
	// Shape returns the number of ticks, KPIs, and databases.
	Shape() (ticks, kpis, databases int)
}

// seriesProvider computes matrices directly from a UnitSeries.
type seriesProvider struct {
	u       *timeseries.UnitSeries
	measure correlate.Measure
	active  []bool
}

// NewProvider wraps a unit series into an uncached MatrixProvider.
func NewProvider(u *timeseries.UnitSeries, measure correlate.Measure, active []bool) MatrixProvider {
	if measure == nil {
		measure = correlate.KCDMeasure(correlate.DetectionOptions())
	}
	return &seriesProvider{u: u, measure: measure, active: active}
}

func (p *seriesProvider) Matrices(start, size int) ([]*correlate.Matrix, error) {
	return correlate.BuildMatrices(p.u, start, size, p.active, p.measure)
}

func (p *seriesProvider) Shape() (int, int, int) {
	return p.u.Len(), p.u.KPIs, p.u.Databases
}

// CachedProvider memoizes another provider's matrices by (start, size).
// It is not safe for concurrent use.
type CachedProvider struct {
	inner MatrixProvider
	cache map[[2]int][]*correlate.Matrix
	// Hits and Misses instrument cache effectiveness.
	Hits, Misses int
}

// NewCachedProvider wraps inner with memoization.
func NewCachedProvider(inner MatrixProvider) *CachedProvider {
	return &CachedProvider{inner: inner, cache: make(map[[2]int][]*correlate.Matrix)}
}

// Matrices implements MatrixProvider.
func (c *CachedProvider) Matrices(start, size int) ([]*correlate.Matrix, error) {
	key := [2]int{start, size}
	if m, ok := c.cache[key]; ok {
		c.Hits++
		return m, nil
	}
	m, err := c.inner.Matrices(start, size)
	if err != nil {
		return nil, err
	}
	c.Misses++
	c.cache[key] = m
	return m, nil
}

// Shape implements MatrixProvider.
func (c *CachedProvider) Shape() (int, int, int) { return c.inner.Shape() }

// Run performs an offline detection pass over the unit's full series and
// returns the sequence of verdicts. Consecutive rounds consume
// non-overlapping windows; a trailing stretch shorter than the initial
// window is left unjudged (the detection task blocks until enough points
// arrive, §IV-A3).
func Run(u *timeseries.UnitSeries, cfg Config) ([]Verdict, *Timing, error) {
	cfg = cfg.withDefaults()
	return RunProvider(NewProvider(u, cfg.Measure, cfg.Active), cfg)
}

// RunProvider is Run against an arbitrary matrix source.
func RunProvider(p MatrixProvider, cfg Config) ([]Verdict, *Timing, error) {
	cfg = cfg.withDefaults()
	ticks, kpis, dbs := p.Shape()
	if err := cfg.Thresholds.Validate(kpis); err != nil {
		return nil, nil, err
	}
	if err := cfg.Flex.Validate(); err != nil {
		return nil, nil, err
	}
	var verdicts []Verdict
	timing := &Timing{}
	cursor := 0
	for cursor+cfg.Flex.Initial <= ticks {
		v, err := judgeRound(p, cfg, cursor, ticks, kpis, dbs, timing)
		if err != nil {
			return nil, nil, err
		}
		verdicts = append(verdicts, v)
		cursor += v.Size
	}
	return verdicts, timing, nil
}

// judgeRound runs one flexible-window judgment starting at cursor.
func judgeRound(p MatrixProvider, cfg Config, cursor, ticks, kpis, dbs int, timing *Timing) (Verdict, error) {
	flex, err := window.NewFlex(cfg.Flex)
	if err != nil {
		return Verdict{}, err
	}
	var expansions int
	for {
		size := flex.Size()
		if cursor+size > ticks {
			// Not enough data to expand further: re-judge at the previous
			// size and resolve as if the window budget were exhausted.
			size = flex.Size() - flexDelta(cfg.Flex)
			return finalizeAtSize(p, cfg, cursor, size, expansions, timing)
		}
		t0 := time.Now()
		mats, err := p.Matrices(cursor, size)
		if err != nil {
			return Verdict{}, err
		}
		timing.Correlation += time.Since(t0)

		t1 := time.Now()
		states := judgeStates(mats, cfg, kpis, dbs)
		round := roundState(states)
		final, done := flex.Resolve(round)
		timing.Window += time.Since(t1)
		if done {
			// Exhaustion is the only path where the flex policy converts
			// a still-observable round into a terminal verdict.
			exhausted := round == window.Observable && final == cfg.Flex.ExhaustState && !cfg.Flex.Disabled
			return buildVerdict(cursor, size, states, cfg, expansions, exhausted), nil
		}
		expansions++
	}
}

// flexDelta mirrors FlexConfig's private delta default.
func flexDelta(c window.FlexConfig) int {
	if c.Delta == 0 {
		return c.Initial
	}
	return c.Delta
}

// finalizeAtSize re-computes the judgment at the given size and forces a
// terminal verdict (used when the series ends mid-expansion).
func finalizeAtSize(p MatrixProvider, cfg Config, cursor, size, expansions int, timing *Timing) (Verdict, error) {
	_, kpis, dbs := p.Shape()
	t0 := time.Now()
	mats, err := p.Matrices(cursor, size)
	if err != nil {
		return Verdict{}, err
	}
	timing.Correlation += time.Since(t0)
	t1 := time.Now()
	states := judgeStates(mats, cfg, kpis, dbs)
	timing.Window += time.Since(t1)
	return buildVerdict(cursor, size, states, cfg, expansions, true), nil
}

// judgeStates maps the matrices to a tentative state per database
// (Algorithm 1 + Fig. 7), honouring each KPI's Table II correlation type:
// an R-R KPI is only judged among replicas.
func judgeStates(mats []*correlate.Matrix, cfg Config, kpis, dbs int) []window.State {
	states := make([]window.State, dbs)
	levels := make([]window.Level, 0, kpis)
	for d := 0; d < dbs; d++ {
		if cfg.Active != nil && !cfg.Active[d] {
			// An unused database does not participate (§III-C).
			states[d] = window.Healthy
			continue
		}
		levels = levels[:0]
		for k := 0; k < kpis; k++ {
			rrOnly := isRROnly(k, kpis)
			if rrOnly && d == cfg.Primary {
				// The primary is not expected to correlate on this KPI.
				continue
			}
			scores := peerScores(mats[k], d, cfg, rrOnly)
			levels = append(levels, window.KPILevel(scores, cfg.Thresholds.Alpha[k], cfg.Thresholds.Theta))
		}
		states[d] = window.DetermineState(levels, cfg.Thresholds.MaxTolerance)
	}
	return states
}

// isRROnly reports whether KPI index k correlates replica-replica only.
// The Table II typing applies when the provider carries the standard 14
// KPIs; nonstandard layouts treat every KPI as fully correlated.
func isRROnly(k, kpis int) bool {
	if kpis != kpi.Count {
		return false
	}
	return kpi.KPI(k).Correlation() == kpi.RR
}

// peerScores extracts database d's scores against the peers it is expected
// to correlate with.
func peerScores(m *correlate.Matrix, d int, cfg Config, rrOnly bool) []float64 {
	out := make([]float64, 0, m.N-1)
	for i := 0; i < m.N; i++ {
		if i == d {
			continue
		}
		if cfg.Active != nil && !cfg.Active[i] {
			continue
		}
		if rrOnly && i == cfg.Primary {
			continue
		}
		out = append(out, m.At(i, d))
	}
	return out
}

// roundState reduces per-database states into the round's tentative state:
// any abnormal database ends the round abnormal; otherwise any observable
// database keeps the round observable; otherwise the round is healthy.
func roundState(states []window.State) window.State {
	round := window.Healthy
	for _, s := range states {
		if s == window.Abnormal {
			return window.Abnormal
		}
		if s == window.Observable {
			round = window.Observable
		}
	}
	return round
}

// finalizeStates resolves any lingering Observable database states into
// terminals. Only when the window budget was exhausted does Observable
// escalate to the configured exhaust state; when the round ended because
// another database turned Abnormal (or expansion is disabled), an
// unconfirmed Observable resolves to Healthy.
func finalizeStates(states []window.State, cfg window.FlexConfig, exhausted bool) []window.State {
	out := make([]window.State, len(states))
	for i, s := range states {
		if s == window.Observable {
			if exhausted && !cfg.Disabled {
				out[i] = cfg.ExhaustState
			} else {
				out[i] = window.Healthy
			}
		} else {
			out[i] = s
		}
	}
	return out
}

// buildVerdict resolves lingering Observable database states via the flex
// policy (exhaustion or disabled-expansion semantics) and assembles the
// round's verdict.
func buildVerdict(start, size int, states []window.State, cfg Config, expansions int, exhausted bool) Verdict {
	finals := finalizeStates(states, cfg.Flex, exhausted)
	v := Verdict{Start: start, Size: size, States: finals, AbnormalDB: -1, Expansions: expansions}
	for d, s := range finals {
		if s == window.Abnormal {
			v.Abnormal = true
			if v.AbnormalDB == -1 {
				v.AbnormalDB = d
			}
		}
	}
	return v
}

// AverageWindowSize returns the mean number of points consumed per
// verdict, the paper's efficiency metric.
func AverageWindowSize(verdicts []Verdict) float64 {
	if len(verdicts) == 0 {
		return 0
	}
	var sum float64
	for _, v := range verdicts {
		sum += float64(v.Size)
	}
	return sum / float64(len(verdicts))
}

// Evaluate scores verdicts against ground truth: a window counts as
// actually abnormal when any tick inside it is labelled abnormal (§IV-A3
// evaluates per time window).
func Evaluate(verdicts []Verdict, labels *anomaly.Labels) (metrics.Confusion, error) {
	var c metrics.Confusion
	for _, v := range verdicts {
		if v.Start < 0 || v.Start+v.Size > len(labels.Point) {
			return c, fmt.Errorf("detect: verdict [%d, %d) outside %d labels", v.Start, v.Start+v.Size, len(labels.Point))
		}
		actual := false
		for t := v.Start; t < v.Start+v.Size; t++ {
			if labels.Point[t] {
				actual = true
				break
			}
		}
		c.Add(v.Abnormal, actual)
	}
	return c, nil
}

// DiagnosisAccuracy reports how often the flagged database matches the
// labelled abnormal database, over true-positive windows.
func DiagnosisAccuracy(verdicts []Verdict, labels *anomaly.Labels) float64 {
	correct, total := 0, 0
	for _, v := range verdicts {
		if !v.Abnormal {
			continue
		}
		truth := -1
		for t := v.Start; t < v.Start+v.Size && t < len(labels.Point); t++ {
			if labels.DB[t] >= 0 {
				truth = labels.DB[t]
				break
			}
		}
		if truth == -1 {
			continue // false positive; not a diagnosis case
		}
		total++
		if v.AbnormalDB == truth {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// JudgeMatrices exposes one judgment step for streaming callers (the
// online monitor): it maps a window's correlation matrices to tentative
// per-database states.
func JudgeMatrices(mats []*correlate.Matrix, cfg Config, kpis, dbs int) []window.State {
	cfg = cfg.withDefaults()
	return judgeStates(mats, cfg, kpis, dbs)
}

// RoundState exposes the per-round reduction of database states.
func RoundState(states []window.State) window.State { return roundState(states) }

// FinalizeStates exposes terminal-state resolution for streaming callers.
func FinalizeStates(states []window.State, cfg window.FlexConfig, exhausted bool) []window.State {
	return finalizeStates(states, cfg, exhausted)
}
