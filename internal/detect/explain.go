package detect

import (
	"fmt"
	"sort"

	"dbcatcher/internal/kpi"
	"dbcatcher/internal/window"
)

// Explanation attributes a judgment to indicators: for one database in one
// window, which KPIs sat at which correlation level and with what best
// peer score. This implements the paper's future-work direction of using
// KPI time series for root cause analysis after detection (§V): level-1
// KPIs name the indicators that broke the UKPIC phenomenon.
type Explanation struct {
	DB    int
	State window.State
	// KPIs holds one entry per judged indicator, worst level first.
	KPIs []KPIFinding
}

// KPIFinding is one indicator's contribution to a judgment.
type KPIFinding struct {
	KPI       kpi.KPI
	Level     window.Level
	BestScore float64 // the database's best peer correlation on this KPI
}

// Culprits returns the deviating indicators (level-1, then level-2).
func (e *Explanation) Culprits() []kpi.KPI {
	var out []kpi.KPI
	for _, f := range e.KPIs {
		if f.Level == window.Level1 || f.Level == window.Level2 {
			out = append(out, f.KPI)
		}
	}
	return out
}

// String renders the explanation for operator logs.
func (e *Explanation) String() string {
	s := fmt.Sprintf("db%d %s", e.DB, e.State)
	for _, f := range e.KPIs {
		if f.Level == window.Level3 {
			break // findings are sorted worst-first
		}
		s += fmt.Sprintf("; %s %s (%.2f)", f.KPI, f.Level, f.BestScore)
	}
	return s
}

// Explain judges the window [start, start+size) of the provider and
// returns the per-database indicator attribution. The standard 14-KPI
// layout is required (the Table II correlation typing applies).
func Explain(p MatrixProvider, cfg Config, start, size int) ([]*Explanation, error) {
	cfg = cfg.withDefaults()
	_, kpis, dbs := p.Shape()
	if err := cfg.Thresholds.Validate(kpis); err != nil {
		return nil, err
	}
	mats, err := p.Matrices(start, size)
	if err != nil {
		return nil, err
	}
	out := make([]*Explanation, dbs)
	for d := 0; d < dbs; d++ {
		e := &Explanation{DB: d}
		if cfg.Active != nil && !cfg.Active[d] {
			e.State = window.Healthy
			out[d] = e
			continue
		}
		levels := make([]window.Level, 0, kpis)
		for k := 0; k < kpis; k++ {
			rr := isRROnly(k, kpis)
			if rr && d == cfg.Primary {
				continue
			}
			scores := peerScoresInto(nil, mats[k], d, cfg, rr)
			best := -2.0
			for _, s := range scores {
				if s > best {
					best = s
				}
			}
			level := window.KPILevel(scores, cfg.Thresholds.Alpha[k], cfg.Thresholds.Theta)
			levels = append(levels, level)
			e.KPIs = append(e.KPIs, KPIFinding{KPI: kpi.KPI(k), Level: level, BestScore: best})
		}
		e.State = window.DetermineState(levels, cfg.Thresholds.MaxTolerance)
		sort.SliceStable(e.KPIs, func(i, j int) bool {
			if e.KPIs[i].Level != e.KPIs[j].Level {
				return e.KPIs[i].Level < e.KPIs[j].Level
			}
			return e.KPIs[i].BestScore < e.KPIs[j].BestScore
		})
		out[d] = e
	}
	return out, nil
}
