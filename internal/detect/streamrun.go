package detect

import (
	"fmt"
	"time"

	"dbcatcher/internal/correlate"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
)

// Streamer runs offline detection passes through the incremental streaming
// correlation tier (correlate.Stream): samples are pushed tick by tick and
// every flexible-window judgment consumes O(1)-updated rolling statistics
// instead of re-materializing and re-scanning the window. All per-round
// buffers — the stream, matrices, judgment scratch, verdict state arena —
// are owned by the Streamer, so a warm RunAppend into a reused verdict
// slice performs zero allocations.
//
// Verdicts follow Run's semantics exactly: non-overlapping rounds, flex
// expansion on Observable, the trailing re-judgment when the series ends
// mid-expansion. Because a round only ever grows from a fixed start, the
// stream is push-only here; scores carry correlate.Stream's documented
// fast-math bound relative to the exact engine path.
//
// A Streamer is not safe for concurrent use; build one per goroutine.
type Streamer struct {
	cfg        Config
	kpis, dbs  int
	stream     *correlate.Stream
	flex       *window.Flex
	mats       []*correlate.Matrix
	js         *JudgeScratch
	sample     [][]float64
	sampleBack []float64
	arena      []window.State
	timing     Timing
}

// NewStreamer builds a reusable streaming runner for the given shape. The
// configuration must use the KCD measure (Measure nil); KCDOptions and the
// flexible-window settings are honoured like Run's.
func NewStreamer(cfg Config, kpis, dbs int) (*Streamer, error) {
	cfg = cfg.withDefaults()
	if cfg.Measure != nil {
		return nil, fmt.Errorf("detect: streaming requires the KCD measure")
	}
	if kpis <= 0 || dbs <= 0 {
		return nil, fmt.Errorf("detect: non-positive shape %dx%d", kpis, dbs)
	}
	if err := cfg.Thresholds.Validate(kpis); err != nil {
		return nil, err
	}
	if err := cfg.Flex.Validate(); err != nil {
		return nil, err
	}
	if cfg.Active != nil && len(cfg.Active) != dbs {
		return nil, fmt.Errorf("detect: active mask has %d entries for %d databases", len(cfg.Active), dbs)
	}
	opts := correlate.DetectionOptions()
	if cfg.KCDOptions != nil {
		opts = *cfg.KCDOptions
	}
	stream, err := correlate.NewStream(kpis, dbs, opts, cfg.Flex.MaxWindow())
	if err != nil {
		return nil, err
	}
	flex, err := window.NewFlex(cfg.Flex)
	if err != nil {
		return nil, err
	}
	r := &Streamer{
		cfg:        cfg,
		kpis:       kpis,
		dbs:        dbs,
		stream:     stream,
		flex:       flex,
		mats:       make([]*correlate.Matrix, kpis),
		js:         NewJudgeScratch(),
		sample:     make([][]float64, kpis),
		sampleBack: make([]float64, kpis*dbs),
	}
	for k := range r.mats {
		r.mats[k] = correlate.NewMatrix(dbs)
	}
	for k := range r.sample {
		r.sample[k] = r.sampleBack[k*dbs : (k+1)*dbs]
	}
	return r, nil
}

// Timing reports how the most recent pass split between correlation
// measurement and window observation logic.
func (r *Streamer) Timing() Timing { return r.timing }

// Run performs one offline pass and returns freshly allocated verdicts.
func (r *Streamer) Run(u *timeseries.UnitSeries) ([]Verdict, error) {
	return r.RunAppend(u, nil)
}

// RunAppend performs one offline pass, appending verdicts to dst (pass a
// reused dst[:0] for an allocation-free warm pass). Verdict States slices
// alias the Streamer's arena and are only valid until the next pass.
func (r *Streamer) RunAppend(u *timeseries.UnitSeries, dst []Verdict) ([]Verdict, error) {
	if u.KPIs != r.kpis || u.Databases != r.dbs {
		return dst, fmt.Errorf("detect: unit shape %dx%d, streamer is %dx%d", u.KPIs, u.Databases, r.kpis, r.dbs)
	}
	ticks := u.Len()
	r.arena = r.arena[:0]
	r.timing = Timing{}
	cursor := 0
	for cursor+r.cfg.Flex.Initial <= ticks {
		r.flex.Reset()
		r.stream.ResetAt(cursor)
		pushed := 0
		expansions := 0
		for {
			size := r.flex.Size()
			if cursor+size > ticks {
				// Series ends mid-expansion: the stream still holds exactly
				// the previous size, so re-judge it and force a terminal
				// verdict — mirroring finalizeAtSize.
				size -= flexDelta(r.cfg.Flex)
				states, err := r.judgeCurrent()
				if err != nil {
					return dst, err
				}
				dst = append(dst, r.emitVerdict(cursor, size, states, expansions, true))
				cursor += size
				break
			}
			t0 := time.Now()
			for ; pushed < size; pushed++ {
				if err := r.pushTick(u, cursor+pushed); err != nil {
					return dst, err
				}
			}
			states, err := r.judgeCurrent()
			if err != nil {
				return dst, err
			}
			r.timing.Correlation += time.Since(t0)
			t1 := time.Now()
			round := roundState(states)
			final, done := r.flex.Resolve(round)
			r.timing.Window += time.Since(t1)
			if done {
				exhausted := round == window.Observable && final == r.cfg.Flex.ExhaustState && !r.cfg.Flex.Disabled
				dst = append(dst, r.emitVerdict(cursor, size, states, expansions, exhausted))
				cursor += size
				break
			}
			expansions++
		}
	}
	return dst, nil
}

// pushTick stages one absolute tick of the unit series into the stream.
func (r *Streamer) pushTick(u *timeseries.UnitSeries, tick int) error {
	for k := 0; k < r.kpis; k++ {
		row := r.sample[k]
		for d := 0; d < r.dbs; d++ {
			row[d] = u.Data[k][d].At(tick)
		}
	}
	return r.stream.Push(r.sample)
}

// judgeCurrent scores the stream's current window and maps it to tentative
// per-database states.
func (r *Streamer) judgeCurrent() ([]window.State, error) {
	if err := r.stream.ScoreInto(r.mats, r.cfg.Active); err != nil {
		return nil, err
	}
	return r.js.judge(r.mats, r.cfg, r.kpis, r.dbs), nil
}

// emitVerdict resolves tentative states into terminals (buildVerdict
// semantics) with the finals carved out of the Streamer's arena.
func (r *Streamer) emitVerdict(start, size int, states []window.State, expansions int, exhausted bool) Verdict {
	off := len(r.arena)
	for _, s := range states {
		if s == window.Observable {
			if exhausted && !r.cfg.Flex.Disabled {
				s = r.cfg.Flex.ExhaustState
			} else {
				s = window.Healthy
			}
		}
		r.arena = append(r.arena, s)
	}
	finals := r.arena[off:len(r.arena):len(r.arena)]
	v := Verdict{Start: start, Size: size, States: finals, AbnormalDB: -1, Expansions: expansions}
	for d, s := range finals {
		if s == window.Abnormal {
			v.Abnormal = true
			if v.AbnormalDB == -1 {
				v.AbnormalDB = d
			}
		}
	}
	return v
}
