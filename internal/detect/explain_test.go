package detect

import (
	"strings"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
)

func TestExplainNamesCulpritKPIs(t *testing.T) {
	u := testUnit(t, 200, 9, 1e-9)
	target := 2
	affected := []kpi.KPI{kpi.CPUUtilization, kpi.InnodbRowsRead}
	if _, err := anomaly.Inject(u, []anomaly.Event{{
		Type: anomaly.Stall, DB: target, Start: 100, Length: 40,
		Magnitude: 0.9, KPIs: affected,
	}}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	p := NewProvider(u.Series, nil, nil)
	exps, err := Explain(p, defaultConfig(), 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 5 {
		t.Fatalf("explanations = %d", len(exps))
	}
	e := exps[target]
	if e.State == window.Healthy {
		t.Fatalf("target state = %v", e.State)
	}
	culprits := e.Culprits()
	found := map[kpi.KPI]bool{}
	for _, c := range culprits {
		found[c] = true
	}
	for _, k := range affected {
		if !found[k] {
			t.Errorf("culprits %v miss affected KPI %v", culprits, k)
		}
	}
	// Worst level sorts first.
	for i := 1; i < len(e.KPIs); i++ {
		if e.KPIs[i].Level < e.KPIs[i-1].Level {
			t.Fatal("findings not sorted worst-first")
		}
	}
	// A healthy peer has no level-1 findings.
	peer := exps[3]
	for _, f := range peer.KPIs {
		if f.Level == window.Level1 {
			t.Errorf("healthy peer has level-1 on %v", f.KPI)
		}
	}
	// String mentions the db and state.
	if !strings.Contains(e.String(), "db2") {
		t.Fatalf("String() = %q", e.String())
	}
}

func TestExplainValidates(t *testing.T) {
	u := testUnit(t, 100, 10, 1e-9)
	p := NewProvider(u.Series, nil, nil)
	cfg := defaultConfig()
	cfg.Thresholds.Alpha = cfg.Thresholds.Alpha[:1]
	if _, err := Explain(p, cfg, 0, 20); err == nil {
		t.Fatal("bad thresholds should error")
	}
	if _, err := Explain(p, defaultConfig(), 90, 20); err == nil {
		t.Fatal("out-of-range window should error")
	}
}

func TestExplainInactiveDatabase(t *testing.T) {
	u := testUnit(t, 100, 11, 1e-9)
	cfg := defaultConfig()
	cfg.Active = []bool{true, true, true, true, false}
	exps, err := Explain(NewProvider(u.Series, nil, cfg.Active), cfg, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if exps[4].State != window.Healthy || len(exps[4].KPIs) != 0 {
		t.Fatal("inactive database should have an empty healthy explanation")
	}
}
