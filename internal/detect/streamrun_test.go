package detect

import (
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
)

// verdictsEqual compares two verdict streams field by field.
func verdictsEqual(t *testing.T, got, want []Verdict) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("verdict count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Start != w.Start || g.Size != w.Size || g.Abnormal != w.Abnormal ||
			g.AbnormalDB != w.AbnormalDB || g.Expansions != w.Expansions || g.Health != w.Health {
			t.Fatalf("verdict %d: got %+v, want %+v", i, g, w)
		}
		for d := range g.States {
			if g.States[d] != w.States[d] {
				t.Fatalf("verdict %d db %d: state %v, want %v", i, d, g.States[d], w.States[d])
			}
		}
	}
}

// TestStreamingRunMatchesExact drives the streaming tier and the exact
// engine over the same simulated units — healthy, anomalous, and
// fluctuation-heavy (window expansions + the trailing mid-expansion
// re-judgment) — and requires identical verdict streams.
func TestStreamingRunMatchesExact(t *testing.T) {
	cases := []struct {
		name   string
		ticks  int
		seed   uint64
		fluct  float64
		inject bool
	}{
		{"healthy", 400, 1, 1e-9, false},
		{"anomalous", 410, 2, 1e-9, true},
		{"fluctuating", 430, 3, 0.3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := testUnit(t, tc.ticks, tc.seed, tc.fluct)
			if tc.inject {
				events := []anomaly.Event{
					{Type: anomaly.Stall, DB: 2, Start: 160, Length: 40, Magnitude: 0.9},
				}
				if _, err := anomaly.Inject(u, events, mathx.NewRNG(3)); err != nil {
					t.Fatal(err)
				}
			}
			cfg := defaultConfig()
			exact, _, err := Run(u.Series, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Streaming = true
			streamed, timing, err := Run(u.Series, cfg)
			if err != nil {
				t.Fatal(err)
			}
			verdictsEqual(t, streamed, exact)
			if timing.Correlation <= 0 {
				t.Fatal("streaming correlation timing not recorded")
			}
		})
	}
}

// TestStreamerActiveMask checks masked databases stay healthy and unscored
// through the streaming path, like the engine path.
func TestStreamerActiveMask(t *testing.T) {
	u := testUnit(t, 200, 4, 1e-9)
	cfg := defaultConfig()
	cfg.Active = []bool{true, true, true, true, false}
	exact, _, err := Run(u.Series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Streaming = true
	streamed, _, err := Run(u.Series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	verdictsEqual(t, streamed, exact)
	for _, v := range streamed {
		if v.States[4] != window.Healthy {
			t.Fatalf("masked database judged %v", v.States[4])
		}
	}
}

// TestStreamerZeroAlloc pins the tentpole contract: a warm streaming pass
// into a reused verdict slice allocates nothing.
func TestStreamerZeroAlloc(t *testing.T) {
	u := testUnit(t, 400, 5, 1e-9)
	r, err := NewStreamer(defaultConfig(), u.Series.KPIs, u.Series.Databases)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []Verdict
	if verdicts, err = r.RunAppend(u.Series, verdicts[:0]); err != nil {
		t.Fatal(err)
	}
	if len(verdicts) == 0 {
		t.Fatal("no verdicts")
	}
	allocs := testing.AllocsPerRun(5, func() {
		var runErr error
		verdicts, runErr = r.RunAppend(u.Series, verdicts[:0])
		if runErr != nil {
			t.Fatal(runErr)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm streaming pass allocates %.1f/op, want 0", allocs)
	}
}

// TestStreamerRejectsCustomMeasure: custom measures have no incremental
// form, so the streaming constructor refuses them (and Run falls back).
func TestStreamerRejectsCustomMeasure(t *testing.T) {
	cfg := defaultConfig()
	cfg.Measure = func(x, y []float64) float64 { return 1 }
	if _, err := NewStreamer(cfg, 14, 5); err == nil {
		t.Fatal("expected error for custom measure")
	}
	// Run with both Streaming and Measure set quietly uses the measure path.
	u := testUnit(t, 100, 6, 1e-9)
	cfg.Streaming = true
	if _, _, err := Run(u.Series, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStreamerShapeMismatch rejects units that do not match the streamer.
func TestStreamerShapeMismatch(t *testing.T) {
	u := testUnit(t, 100, 7, 1e-9)
	r, err := NewStreamer(defaultConfig(), u.Series.KPIs, u.Series.Databases+1)
	if err == nil {
		if _, err = r.Run(u.Series); err == nil {
			t.Fatal("expected shape mismatch error")
		}
	}
}
