package detect

import (
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func testUnit(t *testing.T, ticks int, seed uint64, fluct float64) *cluster.Unit {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: ticks, Seed: seed,
		Profile: workload.TencentIrregular, FluctuationRate: fluct,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func defaultConfig() Config {
	return Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       window.DefaultFlexConfig(),
	}
}

func TestRunHealthyUnit(t *testing.T) {
	u := testUnit(t, 400, 1, 1e-9)
	verdicts, timing, err := Run(u.Series, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) == 0 {
		t.Fatal("no verdicts")
	}
	abnormal := 0
	for _, v := range verdicts {
		if v.Abnormal {
			abnormal++
		}
	}
	if frac := float64(abnormal) / float64(len(verdicts)); frac > 0.15 {
		t.Fatalf("healthy unit flagged abnormal in %.0f%% of windows", frac*100)
	}
	if timing.Correlation <= 0 {
		t.Fatal("correlation timing not recorded")
	}
	// Windows tile the series without overlap.
	cursor := 0
	for _, v := range verdicts {
		if v.Start != cursor {
			t.Fatalf("window start %d, expected %d", v.Start, cursor)
		}
		cursor += v.Size
	}
}

func TestRunDetectsInjectedAnomaly(t *testing.T) {
	u := testUnit(t, 400, 2, 1e-9)
	events := []anomaly.Event{
		{Type: anomaly.Stall, DB: 2, Start: 160, Length: 40, Magnitude: 0.9},
	}
	labels, err := anomaly.Inject(u, events, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	verdicts, _, err := Run(u.Series, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, v := range verdicts {
		overlap := v.Start < 200 && v.Start+v.Size > 160
		if overlap && v.Abnormal {
			hit = true
			if v.AbnormalDB != 2 {
				t.Errorf("flagged db %d, want 2", v.AbnormalDB)
			}
		}
	}
	if !hit {
		t.Fatal("stall not detected")
	}
	c, err := Evaluate(verdicts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recall() == 0 {
		t.Fatalf("zero recall: %v", c)
	}
}

func TestFlexibleWindowExpandsOnFluctuation(t *testing.T) {
	// With heavy benign fluctuations, at least some rounds should expand
	// and ultimately resolve; total expansions > 0 while most verdicts
	// stay healthy.
	u := testUnit(t, 800, 4, 0.05)
	verdicts, _, err := Run(u.Series, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	expansions := 0
	for _, v := range verdicts {
		expansions += v.Expansions
	}
	if expansions == 0 {
		t.Fatal("no window expansions despite fluctuations")
	}
	// §III-C: only a small number of windows expand, so the average
	// window stays near the initial size.
	if avg := AverageWindowSize(verdicts); avg > 45 {
		t.Fatalf("average window %v too large", avg)
	}
}

func TestEvaluateWindows(t *testing.T) {
	labels := anomaly.NewLabels(100)
	for tk := 40; tk < 50; tk++ {
		labels.Point[tk] = true
	}
	verdicts := []Verdict{
		{Start: 0, Size: 20, Abnormal: false},  // TN
		{Start: 20, Size: 20, Abnormal: true},  // FP
		{Start: 40, Size: 20, Abnormal: true},  // TP
		{Start: 60, Size: 20, Abnormal: false}, // TN
	}
	c, err := Evaluate(verdicts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FP != 1 || c.TN != 2 || c.FN != 0 {
		t.Fatalf("confusion = %+v", c)
	}
	bad := []Verdict{{Start: 90, Size: 20, Abnormal: false}}
	if _, err := Evaluate(bad, labels); err == nil {
		t.Fatal("out-of-range verdict should error")
	}
}

func TestDiagnosisAccuracy(t *testing.T) {
	labels := anomaly.NewLabels(60)
	for tk := 10; tk < 20; tk++ {
		labels.Point[tk] = true
		labels.DB[tk] = 3
	}
	verdicts := []Verdict{
		{Start: 0, Size: 30, Abnormal: true, AbnormalDB: 3},  // correct
		{Start: 30, Size: 30, Abnormal: true, AbnormalDB: 1}, // FP, ignored
	}
	if got := DiagnosisAccuracy(verdicts, labels); got != 1 {
		t.Fatalf("accuracy = %v, want 1", got)
	}
	verdicts[0].AbnormalDB = 2
	if got := DiagnosisAccuracy(verdicts, labels); got != 0 {
		t.Fatalf("accuracy = %v, want 0", got)
	}
	if got := DiagnosisAccuracy(nil, labels); got != 0 {
		t.Fatal("no verdicts should give 0")
	}
}

func TestCachedProvider(t *testing.T) {
	u := testUnit(t, 200, 5, 1e-9)
	p := NewCachedProvider(NewProvider(u.Series, nil, nil))
	m1, err := p.Matrices(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.Matrices(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hits != 1 || p.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", p.Hits, p.Misses)
	}
	if &m1[0] != &m2[0] {
		t.Fatal("cache did not return the same matrices")
	}
	if _, err := p.Matrices(190, 20); err == nil {
		t.Fatal("out-of-range window should error through cache")
	}
	ticks, kpis, dbs := p.Shape()
	if ticks != 200 || kpis != kpi.Count || dbs != 5 {
		t.Fatalf("shape = %d %d %d", ticks, kpis, dbs)
	}
}

// countingProvider fabricates tiny matrices and counts computations, so the
// cache tests need no series behind them.
type countingProvider struct {
	computes int
}

func (c *countingProvider) Matrices(start, size int) ([]*correlate.Matrix, error) {
	c.computes++
	m := correlate.NewMatrix(2)
	m.Set(0, 1, float64(start)+float64(size)/1000)
	return []*correlate.Matrix{m}, nil
}

func (c *countingProvider) Shape() (int, int, int) { return 1000, 1, 2 }

func TestCachedProviderCapHolds(t *testing.T) {
	inner := &countingProvider{}
	p := NewCachedProviderSize(inner, 8)
	for start := 0; start < 100; start++ {
		if _, err := p.Matrices(start, 20); err != nil {
			t.Fatal(err)
		}
		if p.Len() > 8 {
			t.Fatalf("cache grew to %d entries, cap is 8", p.Len())
		}
	}
	if p.Len() != 8 {
		t.Fatalf("cache holds %d entries after 100 distinct windows, want 8", p.Len())
	}
	// Eviction is oldest-first: the most recent 8 windows are resident.
	before := inner.computes
	for start := 92; start < 100; start++ {
		if _, err := p.Matrices(start, 20); err != nil {
			t.Fatal(err)
		}
	}
	if inner.computes != before {
		t.Fatalf("recent windows recomputed: %d -> %d", before, inner.computes)
	}
	// The oldest window was evicted and must recompute.
	if _, err := p.Matrices(0, 20); err != nil {
		t.Fatal(err)
	}
	if inner.computes != before+1 {
		t.Fatalf("evicted window not recomputed (computes %d, want %d)", inner.computes, before+1)
	}
	if p.Misses != 101 || p.Hits != 8 {
		t.Fatalf("hits=%d misses=%d, want 8/101", p.Hits, p.Misses)
	}
}

func TestCachedProviderDefaultCap(t *testing.T) {
	p := NewCachedProvider(&countingProvider{})
	for start := 0; start < DefaultCacheEntries+50; start++ {
		if _, err := p.Matrices(start, 10); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != DefaultCacheEntries {
		t.Fatalf("cache holds %d entries, want the %d default cap", p.Len(), DefaultCacheEntries)
	}
}

func TestInactiveDatabaseNeverFlagged(t *testing.T) {
	u := testUnit(t, 300, 6, 1e-9)
	// Make db 4 garbage: if it participated it would trip detection.
	for k := 0; k < kpi.Count; k++ {
		vals := u.Series.Data[k][4].Values
		for i := range vals {
			vals[i] = float64(i % 7)
		}
	}
	cfg := defaultConfig()
	cfg.Active = []bool{true, true, true, true, false}
	verdicts, _, err := Run(u.Series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.States[4] == window.Abnormal {
			t.Fatal("inactive database was judged")
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	u := testUnit(t, 100, 7, 1e-9)
	cfg := defaultConfig()
	cfg.Thresholds.Alpha = cfg.Thresholds.Alpha[:3] // wrong KPI count
	if _, _, err := Run(u.Series, cfg); err == nil {
		t.Fatal("invalid thresholds should error")
	}
	cfg = defaultConfig()
	cfg.Flex = window.FlexConfig{Initial: 30, Max: 10, ExhaustState: window.Abnormal}
	if _, _, err := Run(u.Series, cfg); err == nil {
		t.Fatal("invalid flex config should error")
	}
}

func TestAverageWindowSize(t *testing.T) {
	vs := []Verdict{{Size: 20}, {Size: 40}}
	if got := AverageWindowSize(vs); got != 30 {
		t.Fatalf("avg = %v", got)
	}
	if AverageWindowSize(nil) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestObservablePeersNotDraggedAbnormal(t *testing.T) {
	// When one database is outright abnormal, a peer that merely sat in
	// Observable must resolve Healthy, not Abnormal.
	u := testUnit(t, 200, 8, 1e-9)
	events := []anomaly.Event{{Type: anomaly.Stall, DB: 1, Start: 60, Length: 60, Magnitude: 0.95}}
	if _, err := anomaly.Inject(u, events, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	verdicts, _, err := Run(u.Series, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if !v.Abnormal {
			continue
		}
		flagged := 0
		for _, s := range v.States {
			if s == window.Abnormal {
				flagged++
			}
		}
		if flagged > 2 {
			t.Fatalf("too many databases flagged in one verdict: %v", v.States)
		}
	}
}
