package period

import (
	"math"
	"testing"

	"dbcatcher/internal/mathx"
)

func TestDetectPureSine(t *testing.T) {
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 64)
	}
	res := Detect(x, Config{})
	if !res.Periodic {
		t.Fatalf("pure sine not detected: %+v", res)
	}
	if res.Period < 58 || res.Period > 70 {
		t.Fatalf("period = %d, want ~64", res.Period)
	}
}

func TestDetectNoisySine(t *testing.T) {
	rng := mathx.NewRNG(1)
	n := 2048
	x := make([]float64, n)
	for i := range x {
		x[i] = 3*math.Sin(2*math.Pi*float64(i)/128) + rng.Norm()
	}
	res := Detect(x, Config{})
	if !res.Periodic {
		t.Fatalf("noisy sine not detected: %+v", res)
	}
}

func TestDetectWhiteNoise(t *testing.T) {
	rng := mathx.NewRNG(2)
	x := make([]float64, 2048)
	for i := range x {
		x[i] = rng.Norm()
	}
	if res := Detect(x, Config{}); res.Periodic {
		t.Fatalf("white noise flagged periodic: %+v", res)
	}
}

func TestDetectRandomWalkNotPeriodic(t *testing.T) {
	rng := mathx.NewRNG(3)
	x := make([]float64, 2048)
	v := 0.0
	for i := range x {
		v += rng.Norm()
		x[i] = v
	}
	if res := Detect(x, Config{}); res.Periodic {
		t.Fatalf("random walk flagged periodic: %+v", res)
	}
}

func TestDetectSineWithTrend(t *testing.T) {
	// Detrending must expose periodicity underneath a linear trend.
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.05*float64(i) + math.Sin(2*math.Pi*float64(i)/64)
	}
	if res := Detect(x, Config{}); !res.Periodic {
		t.Fatalf("trended sine not detected: %+v", res)
	}
}

func TestDetectShortSeries(t *testing.T) {
	if res := Detect(make([]float64, 10), Config{}); res.Periodic {
		t.Fatal("too-short series cannot be classified periodic")
	}
}

func TestDetectConstant(t *testing.T) {
	x := make([]float64, 256)
	for i := range x {
		x[i] = 5
	}
	if res := Detect(x, Config{}); res.Periodic {
		t.Fatal("constant series flagged periodic")
	}
}

func TestIsPeriodicWrapper(t *testing.T) {
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}
	if !IsPeriodic(x) {
		t.Fatal("IsPeriodic failed on sine")
	}
}

func TestDetectNoDetrend(t *testing.T) {
	// With detrending disabled, a strong linear trend swamps the spectrum
	// and the sine goes undetected — the reason detrending is on by
	// default.
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5*float64(i) + math.Sin(2*math.Pi*float64(i)/64)
	}
	withDetrend := Detect(x, Config{})
	noDetrend := Detect(x, Config{NoDetrend: true})
	if !withDetrend.Periodic {
		t.Fatal("detrended detection should succeed")
	}
	if noDetrend.Periodic && noDetrend.Period > 50 && noDetrend.Period < 80 {
		t.Log("NoDetrend found the period anyway (acceptable)")
	}
}
