// Package period detects whether a time series carries significant
// periodicity. It stands in for the RobustPeriod method [34] the paper uses
// to split the Tencent dataset into periodic and irregular halves (§IV-A2);
// see DESIGN.md for the substitution rationale.
//
// The detector combines two independent pieces of evidence, in the spirit
// of RobustPeriod's "periodogram + ACF validation" stage:
//
//  1. a periodogram peak that is a large multiple of the median spectral
//     power (Fisher-style significance), and
//  2. an autocorrelation peak at the candidate period confirming that the
//     periodicity holds in the time domain.
package period

import (
	"math"

	"dbcatcher/internal/mathx"
)

// Config tunes the detector.
type Config struct {
	// MinPeriod and MaxPeriod bound the candidate period in ticks.
	// Defaults: 8 and len/3.
	MinPeriod, MaxPeriod int
	// PowerRatio is the required ratio between the periodogram peak and
	// the median power. Default 20.
	PowerRatio float64
	// MinACF is the required autocorrelation at the candidate period.
	// Default 0.3.
	MinACF float64
	// Detrend removes a moving-average trend before analysis. Default on
	// (disable only in tests).
	NoDetrend bool
}

func (c Config) withDefaults(n int) Config {
	if c.MinPeriod == 0 {
		c.MinPeriod = 8
	}
	if c.MaxPeriod == 0 {
		c.MaxPeriod = n / 3
	}
	if c.PowerRatio == 0 {
		c.PowerRatio = 20
	}
	if c.MinACF == 0 {
		c.MinACF = 0.3
	}
	return c
}

// Result reports the detection outcome.
type Result struct {
	// Periodic is true when both the spectral and temporal tests pass.
	Periodic bool
	// Period is the detected period in ticks (0 when not periodic).
	Period int
	// Score is the periodogram peak-to-median power ratio.
	Score float64
	// ACF is the autocorrelation at the detected period.
	ACF float64
}

// Detect analyses one series.
func Detect(x []float64, cfg Config) Result {
	n := len(x)
	if n < 32 {
		return Result{}
	}
	cfg = cfg.withDefaults(n)

	// Detrend in two stages: first a least-squares line (a wide moving
	// average leaves large edge residuals under linear drift), then a wide
	// moving average for the remaining slow curvature. Together they stop
	// drift from masquerading as low-frequency periodicity.
	work := mathx.Clone(x)
	if !cfg.NoDetrend {
		removeLine(work)
		trend := mathx.MovingAverage(work, n/4*2+1)
		for i := range work {
			work[i] -= trend[i]
		}
	}
	if mathx.Std(work) == 0 {
		return Result{}
	}

	// Spectral evidence.
	p := mathx.Periodogram(work)
	// Ignore the DC bin and frequencies outside the period band.
	loBin := int(math.Ceil(float64(n) / float64(cfg.MaxPeriod)))
	hiBin := n / cfg.MinPeriod
	if loBin < 1 {
		loBin = 1
	}
	if hiBin >= len(p) {
		hiBin = len(p) - 1
	}
	if hiBin < loBin {
		return Result{}
	}
	band := p[loBin : hiBin+1]
	peakIdx := mathx.ArgMax(band) + loBin
	med := mathx.Median(p[1:])
	if med == 0 {
		return Result{}
	}
	score := p[peakIdx] / med
	candidate := int(math.Round(float64(n) / float64(peakIdx)))
	if candidate < cfg.MinPeriod || candidate > cfg.MaxPeriod {
		return Result{Score: score}
	}

	// Temporal confirmation: the ACF must peak near the candidate period.
	maxLag := candidate + candidate/4 + 1
	ac := mathx.Autocorrelation(work, maxLag)
	best := -1.0
	for lag := candidate - candidate/4; lag <= candidate+candidate/4 && lag < len(ac); lag++ {
		if lag >= 1 && ac[lag] > best {
			best = ac[lag]
		}
	}

	res := Result{Score: score, ACF: best, Period: candidate}
	res.Periodic = score >= cfg.PowerRatio && best >= cfg.MinACF
	if !res.Periodic {
		res.Period = 0
	}
	return res
}

// IsPeriodic is a convenience wrapper with default configuration.
func IsPeriodic(x []float64) bool { return Detect(x, Config{}).Periodic }

// removeLine subtracts the least-squares straight line from v in place.
func removeLine(v []float64) {
	n := len(v)
	if n < 2 {
		return
	}
	// Closed-form simple linear regression on index.
	tMean := float64(n-1) / 2
	yMean := mathx.Mean(v)
	var num, den float64
	for i, y := range v {
		dt := float64(i) - tMean
		num += dt * (y - yMean)
		den += dt * dt
	}
	slope := 0.0
	if den != 0 {
		slope = num / den
	}
	for i := range v {
		v[i] -= yMean + slope*(float64(i)-tMean)
	}
}
