// Package scenario scripts the hostile-scenario matrix: deterministic,
// labelled failure stories a cloud unit actually lives through — noisy
// neighbors, failover storms, rolling restarts, network partitions, and
// slow-burn cascades. Each scenario composes the existing vocabulary
// (anomaly episodes for what the databases *do*, workload.FaultPlan for
// what the collectors *lose*, cluster failovers for role churn) into one
// unit stream with ground truth attached, and the runner pushes it through
// the same online judge the daemon runs. The point is to turn the chaos
// tests' "we don't crash" into "we still detect, and here is the score":
// per-scenario precision/recall/F-measure, reproducible from a seed.
package scenario

import (
	"fmt"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// Config shapes a scenario run. Zero fields take the documented defaults.
type Config struct {
	// Databases is the unit width. Default 5.
	Databases int
	// Ticks is the stream length. Default 800; scenarios place their
	// episodes at fixed fractions of it, so any length from minTicks up
	// tells the same story.
	Ticks int
	// Workers bounds the judge's correlation pool (verdicts are identical
	// at any setting). Default 1.
	Workers int
}

// minTicks keeps every scripted episode longer than the judge's minimum
// window even at smoke scale.
const minTicks = 400

func (c Config) withDefaults() Config {
	if c.Databases <= 0 {
		c.Databases = 5
	}
	if c.Ticks <= 0 {
		c.Ticks = 800
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Ticks < minTicks {
		return fmt.Errorf("scenario: %d ticks; episodes need at least %d", c.Ticks, minTicks)
	}
	if c.Databases < 4 {
		return fmt.Errorf("scenario: %d databases; the matrix scripts need at least 4", c.Databases)
	}
	return nil
}

// Promotion schedules a detector primary handoff, mirroring a failover the
// series itself encodes.
type Promotion struct {
	Tick       int
	NewPrimary int
}

// Setup is one materialized scenario: the distorted series, what the
// collectors lose on top, the role churn the detector must follow, and the
// ground truth everything is scored against.
type Setup struct {
	Series     *timeseries.UnitSeries
	Labels     *anomaly.Labels
	Plan       workload.FaultPlan
	Promotions []Promotion
}

// Scenario is one scripted failure story.
type Scenario struct {
	// Name is the registry key and table row label.
	Name string
	// Truth states what the labels assert — what must be flagged and,
	// just as important, what must not.
	Truth string
	build func(cfg Config, seed uint64) (*Setup, error)
}

// Result is a scenario's scored outcome.
type Result struct {
	Name      string
	Confusion metrics.Confusion
	// Verdicts counts judged windows; Degraded and Skipped count the
	// rounds the collection faults downgraded.
	Verdicts int
	Degraded int
	Skipped  int
}

// All returns the hostile-scenario matrix in fixed order.
func All() []Scenario {
	return []Scenario{
		{
			Name:  "noisy-neighbor",
			Truth: "recurring multi-tenant contention on one database is flagged; quiet stretches are not",
			build: buildNoisyNeighbor,
		},
		{
			Name:  "failover-storm",
			Truth: "anomalies around a mid-window primary promotion are flagged; the promotion itself is not",
			build: buildFailoverStorm,
		},
		{
			Name:  "rolling-restart",
			Truth: "a restart wave silencing one collector at a time raises no false alarms; the real stall is still caught",
			build: buildRollingRestart,
		},
		{
			Name:  "network-partition",
			Truth: "a partition silencing two of the unit's exporters degrades ingestion without false alarms; anomalies outside it are caught",
			build: buildNetworkPartition,
		},
		{
			Name:  "slow-burn-cascade",
			Truth: "a low-magnitude drift that escalates into a stall is flagged through every stage",
			build: buildSlowBurn,
		},
	}
}

// Find returns the named scenario.
func Find(name string) (Scenario, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q", name)
}

// Build materializes the scenario deterministically from the seed.
func (s Scenario) Build(cfg Config, seed uint64) (*Setup, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return s.build(cfg, seed)
}

// Run materializes the scenario and streams it through the online judge —
// collector (with the scenario's fault plan) feeding monitor.Online tick by
// tick, promotions applied at their scheduled ticks — and scores the
// verdict stream against the ground truth.
func (s Scenario) Run(cfg Config, seed uint64) (Result, error) {
	cfg = cfg.withDefaults()
	setup, err := s.Build(cfg, seed)
	if err != nil {
		return Result{}, err
	}
	judge, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Workers:    cfg.Workers,
	}, kpi.Count, setup.Series.Databases)
	if err != nil {
		return Result{}, err
	}
	col, err := cluster.NewCollector(setup.Series, setup.Plan)
	if err != nil {
		return Result{}, err
	}
	res := Result{Name: s.Name}
	var verdicts []detect.Verdict
	for tick := 0; ; tick++ {
		for _, p := range setup.Promotions {
			if p.Tick == tick {
				if err := judge.SetPrimary(p.NewPrimary); err != nil {
					return Result{}, err
				}
			}
		}
		sample, ok := col.Next()
		if !ok {
			break
		}
		v, err := judge.Push(sample)
		if err != nil {
			return Result{}, err
		}
		if v == nil {
			continue
		}
		verdicts = append(verdicts, v.Verdict)
		switch v.Health {
		case detect.HealthDegraded:
			res.Degraded++
		case detect.HealthSkipped:
			res.Skipped++
		}
	}
	res.Verdicts = len(verdicts)
	res.Confusion, err = detect.Evaluate(verdicts, setup.Labels)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// simulate builds the baseline healthy unit every scenario distorts.
func simulate(cfg Config, seed uint64, fo *cluster.Failover) (*cluster.Unit, error) {
	return cluster.Simulate(cluster.Config{
		Name:      "scenario",
		Databases: cfg.Databases,
		Ticks:     cfg.Ticks,
		Seed:      seed,
		Profile:   workload.TencentIrregular,
		Failover:  fo,
	})
}

// at places an episode at a fixed fraction of the run so every scale tells
// the same story.
func at(cfg Config, frac float64) int { return int(frac * float64(cfg.Ticks)) }

// span sizes an episode as a fraction of the run, floored so it stays
// individually observable at smoke scale.
func span(cfg Config, frac float64) int {
	n := int(frac * float64(cfg.Ticks))
	if n < 12 {
		n = 12
	}
	return n
}

// inject applies the events and returns the resulting ground truth.
func inject(u *cluster.Unit, events []anomaly.Event, seed uint64) (*Setup, error) {
	labels, err := anomaly.Inject(u, events, mathx.NewRNG(seed).Split(0x5ce0))
	if err != nil {
		return nil, err
	}
	return &Setup{Series: u.Series, Labels: labels}, nil
}

// buildNoisyNeighbor scripts multi-tenant contention: a co-located tenant
// keeps stealing CPU and buffer pool from one database in recurring bursts
// (resource-hog episodes), while the rest of the unit keeps tracking the
// shared demand.
func buildNoisyNeighbor(cfg Config, seed uint64) (*Setup, error) {
	u, err := simulate(cfg, seed, nil)
	if err != nil {
		return nil, err
	}
	victim := 3
	return inject(u, []anomaly.Event{
		{Type: anomaly.ResourceHog, DB: victim, Start: at(cfg, 0.15), Length: span(cfg, 0.030), Magnitude: 2.0},
		{Type: anomaly.ResourceHog, DB: victim, Start: at(cfg, 0.45), Length: span(cfg, 0.035), Magnitude: 2.4},
		{Type: anomaly.ResourceHog, DB: victim, Start: at(cfg, 0.75), Length: span(cfg, 0.030), Magnitude: 2.2},
	}, seed)
}

// buildFailoverStorm scripts a failover storm: a replica is promoted to
// primary mid-run while anomalies land on either side of the handoff. The
// promotion redistributes every database's load (the series encodes it) and
// the detector is told to follow — the promotion window itself must not be
// flagged, the surrounding anomalies must.
func buildFailoverStorm(cfg Config, seed uint64) (*Setup, error) {
	foTick := at(cfg, 0.5)
	newPrimary := 1
	u, err := simulate(cfg, seed, &cluster.Failover{Tick: foTick, NewPrimary: newPrimary})
	if err != nil {
		return nil, err
	}
	setup, err := inject(u, []anomaly.Event{
		{Type: anomaly.LevelShift, DB: 2, Start: at(cfg, 0.22), Length: span(cfg, 0.030), Magnitude: 1.4},
		// The storm: a spike opens minutes after the promotion, while the
		// unit is still resettling.
		{Type: anomaly.Spike, DB: 3, Start: at(cfg, 0.56), Length: span(cfg, 0.030), Magnitude: 2.2},
		{Type: anomaly.ResourceHog, DB: 2, Start: at(cfg, 0.8), Length: span(cfg, 0.030), Magnitude: 2.0},
	}, seed)
	if err != nil {
		return nil, err
	}
	setup.Promotions = []Promotion{{Tick: foTick, NewPrimary: newPrimary}}
	return setup, nil
}

// buildRollingRestart scripts a maintenance wave: each database's collection
// agent goes silent in turn (restarts are collector outages, not database
// anomalies), with one genuine stall hidden before the wave. The wave must
// not alarm; the stall must.
func buildRollingRestart(cfg Config, seed uint64) (*Setup, error) {
	u, err := simulate(cfg, seed, nil)
	if err != nil {
		return nil, err
	}
	setup, err := inject(u, []anomaly.Event{
		{Type: anomaly.Stall, DB: 1, Start: at(cfg, 0.15), Length: span(cfg, 0.030), Magnitude: 0.85},
		{Type: anomaly.ResourceHog, DB: 2, Start: at(cfg, 0.78), Length: span(cfg, 0.030), Magnitude: 2.2},
	}, seed)
	if err != nil {
		return nil, err
	}
	// One database at a time, strictly sequential: restart d begins when
	// restart d-1 ends.
	restart := span(cfg, 0.035)
	start := at(cfg, 0.35)
	for d := 0; d < u.Series.Databases; d++ {
		setup.Plan.Silences = append(setup.Plan.Silences, workload.Silence{
			DB: d, Start: start + d*restart, Length: restart,
		})
	}
	setup.Plan.Seed = seed + 17
	return setup, nil
}

// buildNetworkPartition scripts a switch failure splitting the unit's
// exporters: two databases go collectively dark for a sustained window.
// Ingestion must degrade (NaN columns, the gap budget may bench the dark
// databases) without raising false alarms, and anomalies on the still
// reachable side must be caught.
func buildNetworkPartition(cfg Config, seed uint64) (*Setup, error) {
	u, err := simulate(cfg, seed, nil)
	if err != nil {
		return nil, err
	}
	setup, err := inject(u, []anomaly.Event{
		{Type: anomaly.LevelShift, DB: 3, Start: at(cfg, 0.18), Length: span(cfg, 0.030), Magnitude: 1.5},
		{Type: anomaly.Spike, DB: 4, Start: at(cfg, 0.72), Length: span(cfg, 0.030), Magnitude: 2.4},
	}, seed)
	if err != nil {
		return nil, err
	}
	// The partition: databases 1 and 2 vanish together.
	cut := at(cfg, 0.42)
	length := span(cfg, 0.08)
	setup.Plan.Silences = []workload.Silence{
		{DB: 1, Start: cut, Length: length},
		{DB: 2, Start: cut, Length: length},
	}
	setup.Plan.Seed = seed + 23
	return setup, nil
}

// buildSlowBurn scripts a slow-burn cascade on one database: a
// low-magnitude concept drift (an index gone mildly wrong) escalates into a
// steeper drift (the optimizer chasing its tail) and finally a stall (the
// lock pileup). Every stage is labelled; the detector should follow the
// burn all the way down.
func buildSlowBurn(cfg Config, seed uint64) (*Setup, error) {
	u, err := simulate(cfg, seed, nil)
	if err != nil {
		return nil, err
	}
	victim := 1
	return inject(u, []anomaly.Event{
		{Type: anomaly.ConceptDrift, DB: victim, Start: at(cfg, 0.25), Length: span(cfg, 0.10), Magnitude: 0.8},
		{Type: anomaly.ConceptDrift, DB: victim, Start: at(cfg, 0.55), Length: span(cfg, 0.07), Magnitude: 1.6},
		{Type: anomaly.Stall, DB: victim, Start: at(cfg, 0.82), Length: span(cfg, 0.035), Magnitude: 0.9},
	}, seed)
}
