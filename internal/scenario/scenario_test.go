package scenario

import (
	"reflect"
	"testing"
)

// Same seed, same config: the matrix must reproduce bit for bit.
func TestScenariosDeterministic(t *testing.T) {
	for _, s := range All() {
		a, err := s.Run(Config{Ticks: 500}, 7)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := s.Run(Config{Ticks: 500}, 7)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: runs differ:\n%+v\n%+v", s.Name, a, b)
		}
	}
}

func TestScenarioScores(t *testing.T) {
	for _, s := range All() {
		r, err := s.Run(Config{Ticks: 800}, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		c := r.Confusion
		t.Logf("%-18s TP=%d FP=%d TN=%d FN=%d P=%.2f R=%.2f F=%.2f verdicts=%d degraded=%d skipped=%d",
			s.Name, c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.FMeasure(), r.Verdicts, r.Degraded, r.Skipped)
	}
}
