// Package timeseries defines the time-series containers shared across the
// repository: Series for a single KPI stream, UnitSeries for the full
// per-unit multivariate layout (KPI × database), and a fixed-capacity ring
// buffer used by the monitoring queues.
//
// All series in this system share the paper's collection model: one data
// point every IntervalSeconds (5 s by default), aligned across databases of
// a unit.
package timeseries

import (
	"errors"
	"fmt"

	"dbcatcher/internal/mathx"
)

// DefaultIntervalSeconds is the paper's collection interval between data
// points (§III-A: "a collection interval of 5 seconds among data points").
const DefaultIntervalSeconds = 5

// Series is a uniformly sampled univariate time series.
type Series struct {
	// Name is a free-form identifier (usually "<unit>/<db>/<kpi>").
	Name string
	// StartUnix is the Unix timestamp of the first point, in seconds.
	StartUnix int64
	// IntervalSeconds is the spacing between points.
	IntervalSeconds int
	// Values holds the observations.
	Values []float64
}

// New returns an empty series with the default 5 s interval.
func New(name string) *Series {
	return &Series{Name: name, IntervalSeconds: DefaultIntervalSeconds}
}

// FromValues wraps values (not copied) into a series with the default
// interval.
func FromValues(name string, values []float64) *Series {
	return &Series{Name: name, IntervalSeconds: DefaultIntervalSeconds, Values: values}
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// At returns the i-th value.
func (s *Series) At(i int) float64 { return s.Values[i] }

// TimeAt returns the Unix timestamp of point i.
func (s *Series) TimeAt(i int) int64 {
	return s.StartUnix + int64(i*s.IntervalSeconds)
}

// Append adds values to the end of the series.
func (s *Series) Append(values ...float64) { s.Values = append(s.Values, values...) }

// ErrBadWindow is returned when a requested window falls outside the series.
var ErrBadWindow = errors.New("timeseries: window out of range")

// Window returns the sub-series [start, start+n). The returned slice shares
// backing storage with s.
func (s *Series) Window(start, n int) ([]float64, error) {
	if start < 0 || n < 0 || start+n > len(s.Values) {
		return nil, fmt.Errorf("%w: [%d, %d) of %d", ErrBadWindow, start, start+n, len(s.Values))
	}
	return s.Values[start : start+n], nil
}

// Normalized returns a min-max normalized copy of the values (paper Eq. 1).
func (s *Series) Normalized() []float64 { return mathx.Normalize(s.Values) }

// Clone deep-copies the series.
func (s *Series) Clone() *Series {
	return &Series{
		Name:            s.Name,
		StartUnix:       s.StartUnix,
		IntervalSeconds: s.IntervalSeconds,
		Values:          mathx.Clone(s.Values),
	}
}

// Slice returns a new Series covering points [start, end), sharing storage.
func (s *Series) Slice(start, end int) (*Series, error) {
	if start < 0 || end < start || end > len(s.Values) {
		return nil, fmt.Errorf("%w: [%d, %d) of %d", ErrBadWindow, start, end, len(s.Values))
	}
	return &Series{
		Name:            s.Name,
		StartUnix:       s.TimeAt(start),
		IntervalSeconds: s.IntervalSeconds,
		Values:          s.Values[start:end],
	}, nil
}

// Concat appends other's values to a copy of s (used by the baseline
// evaluation protocol, which concatenates the same KPI across databases).
func Concat(name string, parts ...*Series) *Series {
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	out := &Series{Name: name, IntervalSeconds: DefaultIntervalSeconds, Values: make([]float64, 0, total)}
	if len(parts) > 0 {
		out.StartUnix = parts[0].StartUnix
		out.IntervalSeconds = parts[0].IntervalSeconds
	}
	for _, p := range parts {
		out.Values = append(out.Values, p.Values...)
	}
	return out
}

// UnitSeries holds the complete multivariate series of one unit:
// Data[k][d] is the series of KPI k on database d. All series have equal
// length and aligned timestamps.
type UnitSeries struct {
	Unit      string
	Databases int
	KPIs      int
	Data      [][]*Series // [KPIs][Databases]
}

// NewUnitSeries allocates an empty layout for the given shape.
func NewUnitSeries(unit string, kpis, databases int) *UnitSeries {
	u := &UnitSeries{Unit: unit, Databases: databases, KPIs: kpis}
	u.Data = make([][]*Series, kpis)
	for k := range u.Data {
		u.Data[k] = make([]*Series, databases)
		for d := range u.Data[k] {
			u.Data[k][d] = New(fmt.Sprintf("%s/db%d/kpi%d", unit, d, k))
		}
	}
	return u
}

// Len returns the number of points per series (they are aligned), 0 when
// empty.
func (u *UnitSeries) Len() int {
	if u.KPIs == 0 || u.Databases == 0 {
		return 0
	}
	return u.Data[0][0].Len()
}

// Series returns the stream of KPI k on database d.
func (u *UnitSeries) Series(k, d int) *Series { return u.Data[k][d] }

// Validate checks that the layout is rectangular and aligned.
func (u *UnitSeries) Validate() error {
	if len(u.Data) != u.KPIs {
		return fmt.Errorf("timeseries: unit %s has %d KPI rows, want %d", u.Unit, len(u.Data), u.KPIs)
	}
	n := -1
	for k, row := range u.Data {
		if len(row) != u.Databases {
			return fmt.Errorf("timeseries: unit %s KPI %d has %d databases, want %d", u.Unit, k, len(row), u.Databases)
		}
		for d, s := range row {
			if s == nil {
				return fmt.Errorf("timeseries: unit %s missing series (%d, %d)", u.Unit, k, d)
			}
			if n == -1 {
				n = s.Len()
			} else if s.Len() != n {
				return fmt.Errorf("timeseries: unit %s series (%d, %d) has %d points, want %d", u.Unit, k, d, s.Len(), n)
			}
		}
	}
	return nil
}

// SliceRange returns a view of points [start, end) for every series.
func (u *UnitSeries) SliceRange(start, end int) (*UnitSeries, error) {
	out := &UnitSeries{Unit: u.Unit, Databases: u.Databases, KPIs: u.KPIs}
	out.Data = make([][]*Series, u.KPIs)
	for k := range u.Data {
		out.Data[k] = make([]*Series, u.Databases)
		for d := range u.Data[k] {
			s, err := u.Data[k][d].Slice(start, end)
			if err != nil {
				return nil, err
			}
			out.Data[k][d] = s
		}
	}
	return out, nil
}

// Downsample returns a new series where each point is the mean of `factor`
// consecutive points (a trailing partial bucket is dropped). Monitoring
// pipelines use this to trade detection latency for noise reduction.
func (s *Series) Downsample(factor int) (*Series, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive downsample factor %d", factor)
	}
	if factor == 1 {
		return s.Clone(), nil
	}
	n := len(s.Values) / factor
	out := &Series{
		Name:            s.Name,
		StartUnix:       s.StartUnix,
		IntervalSeconds: s.IntervalSeconds * factor,
		Values:          make([]float64, n),
	}
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < factor; j++ {
			sum += s.Values[i*factor+j]
		}
		out.Values[i] = sum / float64(factor)
	}
	return out, nil
}
