package timeseries

import "math"

// Ring is a fixed-capacity ring buffer of float64 observations. The
// monitoring data-processing module keeps one Ring per (KPI, database) pair;
// when full, the oldest point is overwritten so the buffer always holds the
// most recent Cap() observations.
//
// Real collectors drop points: a tick can arrive with no value for this
// (KPI, database) cell. The ring records such holes explicitly — a gap
// occupies a slot (so absolute tick arithmetic stays valid) but is marked,
// letting downstream consumers skip or interpolate it instead of judging
// garbage. Gap slots store NaN; pushing NaN marks a gap automatically.
//
// Ring is not safe for concurrent use; the monitor serializes access.
type Ring struct {
	buf   []float64
	gap   []bool
	head  int // index of the oldest element
	count int
	gaps  int // gap entries currently stored
}

// NewRing returns a ring buffer with the given capacity (must be > 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("timeseries: ring capacity must be positive")
	}
	return &Ring{buf: make([]float64, capacity), gap: make([]bool, capacity)}
}

// Cap returns the fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of stored observations (<= Cap).
func (r *Ring) Len() int { return r.count }

// GapCount returns how many of the stored observations are gaps.
func (r *Ring) GapCount() int { return r.gaps }

// Push appends v, evicting the oldest observation when full. A NaN value is
// recorded as a gap. It reports whether an eviction occurred.
func (r *Ring) Push(v float64) (evicted bool) {
	return r.push(v, math.IsNaN(v))
}

// PushGap appends an explicit gap marker (a dropped collection point),
// evicting the oldest observation when full.
func (r *Ring) PushGap() (evicted bool) {
	return r.push(math.NaN(), true)
}

func (r *Ring) push(v float64, gap bool) (evicted bool) {
	if r.count < len(r.buf) {
		i := (r.head + r.count) % len(r.buf)
		r.buf[i] = v
		r.gap[i] = gap
		if gap {
			r.gaps++
		}
		r.count++
		return false
	}
	if r.gap[r.head] {
		r.gaps--
	}
	r.buf[r.head] = v
	r.gap[r.head] = gap
	if gap {
		r.gaps++
	}
	r.head = (r.head + 1) % len(r.buf)
	return true
}

// At returns the i-th oldest observation (0 = oldest). Gap slots read NaN.
func (r *Ring) At(i int) float64 {
	if i < 0 || i >= r.count {
		panic("timeseries: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// IsGap reports whether the i-th oldest observation (0 = oldest) is a
// dropped collection point.
func (r *Ring) IsGap(i int) bool {
	if i < 0 || i >= r.count {
		panic("timeseries: ring index out of range")
	}
	return r.gap[(r.head+i)%len(r.buf)]
}

// GapsInRange counts the gaps among observations [start, start+n) (0 =
// oldest stored).
func (r *Ring) GapsInRange(start, n int) int {
	if start < 0 || n < 0 || start+n > r.count {
		panic("timeseries: ring range out of bounds")
	}
	if r.gaps == 0 {
		return 0
	}
	total := 0
	for i := start; i < start+n; i++ {
		if r.gap[(r.head+i)%len(r.buf)] {
			total++
		}
	}
	return total
}

// Last returns the n most recent observations, oldest first. If fewer than
// n observations are stored it returns what is available.
func (r *Ring) Last(n int) []float64 {
	if n > r.count {
		n = r.count
	}
	out := make([]float64, n)
	start := r.count - n
	for i := 0; i < n; i++ {
		out[i] = r.At(start + i)
	}
	return out
}

// Snapshot returns all stored observations, oldest first.
func (r *Ring) Snapshot() []float64 { return r.Last(r.count) }

// Reset discards all observations.
func (r *Ring) Reset() {
	r.head = 0
	r.count = 0
	r.gaps = 0
}
