package timeseries

// Ring is a fixed-capacity ring buffer of float64 observations. The
// monitoring data-processing module keeps one Ring per (KPI, database) pair;
// when full, the oldest point is overwritten so the buffer always holds the
// most recent Cap() observations.
//
// Ring is not safe for concurrent use; the monitor serializes access.
type Ring struct {
	buf   []float64
	head  int // index of the oldest element
	count int
}

// NewRing returns a ring buffer with the given capacity (must be > 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("timeseries: ring capacity must be positive")
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Cap returns the fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of stored observations (<= Cap).
func (r *Ring) Len() int { return r.count }

// Push appends v, evicting the oldest observation when full. It reports
// whether an eviction occurred.
func (r *Ring) Push(v float64) (evicted bool) {
	if r.count < len(r.buf) {
		r.buf[(r.head+r.count)%len(r.buf)] = v
		r.count++
		return false
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	return true
}

// At returns the i-th oldest observation (0 = oldest).
func (r *Ring) At(i int) float64 {
	if i < 0 || i >= r.count {
		panic("timeseries: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Last returns the n most recent observations, oldest first. If fewer than
// n observations are stored it returns what is available.
func (r *Ring) Last(n int) []float64 {
	if n > r.count {
		n = r.count
	}
	out := make([]float64, n)
	start := r.count - n
	for i := 0; i < n; i++ {
		out[i] = r.At(start + i)
	}
	return out
}

// Snapshot returns all stored observations, oldest first.
func (r *Ring) Snapshot() []float64 { return r.Last(r.count) }

// Reset discards all observations.
func (r *Ring) Reset() {
	r.head = 0
	r.count = 0
}
