package timeseries

import (
	"errors"
	"testing"

	"dbcatcher/internal/mathx"
)

func TestSeriesBasics(t *testing.T) {
	s := New("u/db0/cpu")
	if s.IntervalSeconds != 5 {
		t.Fatalf("default interval = %d, want 5", s.IntervalSeconds)
	}
	s.Append(1, 2, 3)
	if s.Len() != 3 || s.At(1) != 2 {
		t.Fatal("Append/At broken")
	}
	s.StartUnix = 100
	if got := s.TimeAt(2); got != 110 {
		t.Fatalf("TimeAt(2) = %d, want 110", got)
	}
}

func TestWindow(t *testing.T) {
	s := FromValues("x", []float64{0, 1, 2, 3, 4})
	w, err := s.Window(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.EqualApprox(w, []float64{1, 2, 3}, 0) {
		t.Fatalf("Window = %v", w)
	}
	if _, err := s.Window(3, 5); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("expected ErrBadWindow, got %v", err)
	}
	if _, err := s.Window(-1, 2); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("negative start should fail, got %v", err)
	}
}

func TestNormalized(t *testing.T) {
	s := FromValues("x", []float64{10, 30})
	if got := s.Normalized(); !mathx.EqualApprox(got, []float64{0, 1}, 0) {
		t.Fatalf("Normalized = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromValues("x", []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSlice(t *testing.T) {
	s := FromValues("x", []float64{0, 1, 2, 3})
	s.StartUnix = 1000
	sub, err := s.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.At(0) != 1 {
		t.Fatalf("Slice values wrong: %v", sub.Values)
	}
	if sub.StartUnix != 1005 {
		t.Fatalf("Slice StartUnix = %d, want 1005", sub.StartUnix)
	}
	if _, err := s.Slice(2, 10); err == nil {
		t.Fatal("out-of-range Slice should fail")
	}
}

func TestConcat(t *testing.T) {
	a := FromValues("a", []float64{1, 2})
	b := FromValues("b", []float64{3})
	c := Concat("ab", a, b)
	if !mathx.EqualApprox(c.Values, []float64{1, 2, 3}, 0) {
		t.Fatalf("Concat = %v", c.Values)
	}
	empty := Concat("empty")
	if empty.Len() != 0 {
		t.Fatal("empty Concat should have no points")
	}
}

func TestUnitSeriesShape(t *testing.T) {
	u := NewUnitSeries("unit0", 3, 5)
	if u.Len() != 0 {
		t.Fatalf("empty unit Len = %d", u.Len())
	}
	for k := 0; k < 3; k++ {
		for d := 0; d < 5; d++ {
			u.Series(k, d).Append(1, 2, 3, 4)
		}
	}
	if u.Len() != 4 {
		t.Fatalf("Len = %d, want 4", u.Len())
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestUnitSeriesValidateCatchesMisalignment(t *testing.T) {
	u := NewUnitSeries("u", 2, 2)
	u.Series(0, 0).Append(1, 2)
	u.Series(0, 1).Append(1, 2)
	u.Series(1, 0).Append(1, 2)
	u.Series(1, 1).Append(1) // short
	if err := u.Validate(); err == nil {
		t.Fatal("Validate should catch misaligned series")
	}
}

func TestUnitSeriesSliceRange(t *testing.T) {
	u := NewUnitSeries("u", 2, 2)
	for k := 0; k < 2; k++ {
		for d := 0; d < 2; d++ {
			u.Series(k, d).Append(float64(k), float64(d), 7, 8)
		}
	}
	sub, err := u.SliceRange(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Series(0, 0).At(0) != 7 {
		t.Fatalf("SliceRange wrong: %v", sub.Series(0, 0).Values)
	}
	if _, err := u.SliceRange(3, 9); err == nil {
		t.Fatal("out-of-range SliceRange should fail")
	}
}

func TestDownsample(t *testing.T) {
	s := FromValues("x", []float64{1, 3, 5, 7, 9, 11, 100})
	s.StartUnix = 50
	d, err := s.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.EqualApprox(d.Values, []float64{2, 6, 10}, 1e-12) {
		t.Fatalf("Downsample = %v", d.Values)
	}
	if d.IntervalSeconds != 10 || d.StartUnix != 50 {
		t.Fatalf("metadata: interval %d start %d", d.IntervalSeconds, d.StartUnix)
	}
	if _, err := s.Downsample(0); err == nil {
		t.Fatal("factor 0 should error")
	}
	same, err := s.Downsample(1)
	if err != nil || same.Len() != s.Len() {
		t.Fatal("factor 1 should copy")
	}
	same.Values[0] = 99
	if s.Values[0] == 99 {
		t.Fatal("factor-1 Downsample shares storage")
	}
}
