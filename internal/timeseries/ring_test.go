package timeseries

import (
	"math"
	"testing"
	"testing/quick"

	"dbcatcher/internal/mathx"
)

func TestRingFillAndEvict(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatal("fresh ring wrong")
	}
	if r.Push(1) || r.Push(2) || r.Push(3) {
		t.Fatal("no eviction expected while filling")
	}
	if !r.Push(4) {
		t.Fatal("push into full ring must evict")
	}
	if got := r.Snapshot(); !mathx.EqualApprox(got, []float64{2, 3, 4}, 0) {
		t.Fatalf("Snapshot = %v", got)
	}
}

func TestRingLast(t *testing.T) {
	r := NewRing(5)
	for i := 1; i <= 4; i++ {
		r.Push(float64(i))
	}
	if got := r.Last(2); !mathx.EqualApprox(got, []float64{3, 4}, 0) {
		t.Fatalf("Last(2) = %v", got)
	}
	if got := r.Last(10); len(got) != 4 {
		t.Fatalf("Last beyond len should clamp, got %v", got)
	}
}

func TestRingAtPanics(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.At(1)
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("Reset did not clear")
	}
	r.Push(9)
	if r.At(0) != 9 {
		t.Fatal("ring unusable after Reset")
	}
}

func TestNewRingPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0)
}

func TestRingGapMarking(t *testing.T) {
	r := NewRing(4)
	r.Push(1)
	r.PushGap()
	r.Push(math.NaN()) // NaN auto-marks a gap
	r.Push(2)
	if r.GapCount() != 2 {
		t.Fatalf("GapCount = %d, want 2", r.GapCount())
	}
	if r.IsGap(0) || !r.IsGap(1) || !r.IsGap(2) || r.IsGap(3) {
		t.Fatal("gap flags wrong")
	}
	if !math.IsNaN(r.At(1)) || !math.IsNaN(r.At(2)) {
		t.Fatal("gap slots must read NaN")
	}
	if got := r.GapsInRange(1, 2); got != 2 {
		t.Fatalf("GapsInRange(1,2) = %d", got)
	}
	if got := r.GapsInRange(0, 1); got != 0 {
		t.Fatalf("GapsInRange(0,1) = %d", got)
	}
}

func TestRingGapEvictionAccounting(t *testing.T) {
	r := NewRing(2)
	r.PushGap()
	r.PushGap()
	if r.GapCount() != 2 {
		t.Fatalf("GapCount = %d", r.GapCount())
	}
	// Evicting a gap with a value must decrement; evicting a value with a
	// gap must keep the count balanced.
	r.Push(5)
	if r.GapCount() != 1 {
		t.Fatalf("after evicting one gap GapCount = %d", r.GapCount())
	}
	r.Push(6)
	if r.GapCount() != 0 {
		t.Fatalf("after evicting both gaps GapCount = %d", r.GapCount())
	}
	r.PushGap()
	if r.GapCount() != 1 || !r.IsGap(1) || r.IsGap(0) {
		t.Fatal("gap flag misplaced after wraparound")
	}
	r.Reset()
	if r.GapCount() != 0 {
		t.Fatal("Reset must clear gap count")
	}
}

// Eviction boundary: the first evicted tick is exactly Len ticks behind the
// total push count, and the exact-fit window covering every retained point
// is readable.
func TestRingEvictionBoundary(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 9; i++ { // ticks 0..8; 5..8 retained
		r.Push(float64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.At(0) != 5 {
		t.Fatalf("oldest retained = %v, want 5 (tick 4 first-evicted)", r.At(0))
	}
	if got := r.Last(4); !mathx.EqualApprox(got, []float64{5, 6, 7, 8}, 0) {
		t.Fatalf("exact-fit window = %v", got)
	}
	if got := r.GapsInRange(0, r.Len()); got != 0 {
		t.Fatalf("gapless ring reports %d gaps", got)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.GapCount() != 0 {
		t.Fatal("empty ring not empty")
	}
	if got := r.Last(2); len(got) != 0 {
		t.Fatalf("Last on empty = %v", got)
	}
	if got := r.GapsInRange(0, 0); got != 0 {
		t.Fatalf("empty range gaps = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("IsGap on empty ring must panic")
		}
	}()
	r.IsGap(0)
}

// Property: after any push sequence the ring holds exactly the suffix of the
// pushed values, in order.
func TestRingHoldsSuffixProperty(t *testing.T) {
	f := func(values []float64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewRing(capacity)
		for _, v := range values {
			r.Push(v)
		}
		want := values
		if len(want) > capacity {
			want = want[len(want)-capacity:]
		}
		return mathx.EqualApprox(r.Snapshot(), want, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
