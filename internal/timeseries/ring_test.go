package timeseries

import (
	"testing"
	"testing/quick"

	"dbcatcher/internal/mathx"
)

func TestRingFillAndEvict(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatal("fresh ring wrong")
	}
	if r.Push(1) || r.Push(2) || r.Push(3) {
		t.Fatal("no eviction expected while filling")
	}
	if !r.Push(4) {
		t.Fatal("push into full ring must evict")
	}
	if got := r.Snapshot(); !mathx.EqualApprox(got, []float64{2, 3, 4}, 0) {
		t.Fatalf("Snapshot = %v", got)
	}
}

func TestRingLast(t *testing.T) {
	r := NewRing(5)
	for i := 1; i <= 4; i++ {
		r.Push(float64(i))
	}
	if got := r.Last(2); !mathx.EqualApprox(got, []float64{3, 4}, 0) {
		t.Fatalf("Last(2) = %v", got)
	}
	if got := r.Last(10); len(got) != 4 {
		t.Fatalf("Last beyond len should clamp, got %v", got)
	}
}

func TestRingAtPanics(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.At(1)
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("Reset did not clear")
	}
	r.Push(9)
	if r.At(0) != 9 {
		t.Fatal("ring unusable after Reset")
	}
}

func TestNewRingPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0)
}

// Property: after any push sequence the ring holds exactly the suffix of the
// pushed values, in order.
func TestRingHoldsSuffixProperty(t *testing.T) {
	f := func(values []float64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewRing(capacity)
		for _, v := range values {
			r.Push(v)
		}
		want := values
		if len(want) > capacity {
			want = want[len(want)-capacity:]
		}
		return mathx.EqualApprox(r.Snapshot(), want, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
