package dbcatcher_test

import (
	"fmt"

	"dbcatcher"
)

// ExampleKCD shows the correlation measure on two trends that differ in
// scale and carry a small collection delay: KCD sees through both.
func ExampleKCD() {
	// y is 10x-scaled x, delayed by one point.
	x := []float64{1, 2, 4, 8, 9, 7, 4, 2, 1, 2, 4, 8}
	y := []float64{20, 10, 20, 40, 80, 90, 70, 40, 20, 10, 20, 40}
	fmt.Printf("KCD = %.2f\n", dbcatcher.KCD(x, y))
	// Output: KCD = 0.98
}

// ExampleDetectSeries runs offline detection over a simulated unit with an
// injected database stall.
func ExampleDetectSeries() {
	unit, err := dbcatcher.SimulateUnit(dbcatcher.UnitConfig{
		Name: "example", Ticks: 200, Seed: 42,
		Profile:         dbcatcher.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := dbcatcher.InjectAnomalies(unit, []dbcatcher.AnomalyEvent{
		{Type: dbcatcher.Stall, DB: 2, Start: 100, Length: 40, Magnitude: 0.9},
	}, 7); err != nil {
		fmt.Println(err)
		return
	}
	verdicts, err := dbcatcher.DetectSeries(unit.Series, dbcatcher.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, v := range verdicts {
		if v.Abnormal {
			fmt.Printf("abnormal database %d in window [%d, %d)\n",
				v.AbnormalDB, v.Start, v.Start+v.Size)
		}
	}
	// Output:
	// abnormal database 2 in window [100, 120)
	// abnormal database 2 in window [120, 140)
}
