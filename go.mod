module dbcatcher

go 1.22
