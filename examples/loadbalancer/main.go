// Load-balancer defect scenario (paper Fig. 4): a defective balancing
// strategy concentrates SQL on one database; its read-side KPIs inflate
// while the peers deflate, breaking the UKPIC phenomenon on exactly that
// database. DBCatcher localizes the culprit.
package main

import (
	"fmt"
	"log"

	"dbcatcher"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
)

func main() {
	unit, err := dbcatcher.SimulateUnit(dbcatcher.UnitConfig{
		Name:    "lb-defect",
		Ticks:   480,
		Seed:    11,
		Profile: dbcatcher.TencentIrregular,
	})
	if err != nil {
		log.Fatal(err)
	}
	const target, start, length = 2, 240, 80
	if _, err := dbcatcher.InjectAnomalies(unit, []dbcatcher.AnomalyEvent{
		{Type: dbcatcher.LoadBalanceDefect, DB: target, Start: start, Length: length, Magnitude: 1.8},
	}, 3); err != nil {
		log.Fatal(err)
	}

	fmt.Println("mean Requests Per Second per database, before vs during the defect:")
	for d := 0; d < 5; d++ {
		vals := unit.Series.Data[kpi.RequestsPerSecond][d].Values
		before := mathx.Mean(vals[start-length : start])
		during := mathx.Mean(vals[start : start+length])
		marker := ""
		if d == target {
			marker = "  <- defect target"
		}
		fmt.Printf("  db%d: %8.0f -> %8.0f req/s (%+.0f%%)%s\n",
			d, before, during, 100*(during-before)/before, marker)
	}

	verdicts, err := dbcatcher.DetectSeries(unit.Series, dbcatcher.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverdicts overlapping the defect window:")
	caught := false
	for _, v := range verdicts {
		if v.Start+v.Size <= start || v.Start >= start+length {
			continue
		}
		status := "healthy"
		if v.Abnormal {
			status = fmt.Sprintf("ABNORMAL db=%d", v.AbnormalDB)
			if v.AbnormalDB == target {
				caught = true
			}
		}
		fmt.Printf("  window [%3d, %3d): %s\n", v.Start, v.Start+v.Size, status)
	}
	if caught {
		fmt.Println("\nDBCatcher localized the defective-balancing target, as in Fig. 4.")
	} else {
		fmt.Println("\n(no verdict named the target this run; rerun with another -seed)")
	}
}
