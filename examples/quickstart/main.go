// Quickstart: simulate a five-database cloud unit, inject a database
// stall, and catch it with DBCatcher's streaming detector — the minimal
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"dbcatcher"
)

func main() {
	// 1. A simulated unit: 1 primary + 4 replicas, 30 minutes of 5 s KPI
	//    points under an irregular production-like workload.
	unit, err := dbcatcher.SimulateUnit(dbcatcher.UnitConfig{
		Name:    "quickstart",
		Ticks:   360,
		Seed:    42,
		Profile: dbcatcher.TencentIrregular,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Break database 3 for ~3 minutes starting at minute 15.
	if _, err := dbcatcher.InjectAnomalies(unit, []dbcatcher.AnomalyEvent{
		{Type: dbcatcher.Stall, DB: 3, Start: 180, Length: 36, Magnitude: 0.9},
	}, 7); err != nil {
		log.Fatal(err)
	}

	// 3. Stream the unit through the online detector.
	det, err := dbcatcher.NewDetector(dbcatcher.Config{Databases: 5})
	if err != nil {
		log.Fatal(err)
	}
	sample := make([][]float64, dbcatcher.KPICount)
	for k := range sample {
		sample[k] = make([]float64, 5)
	}
	fmt.Println("streaming 360 ticks (30 min of monitoring data)...")
	for tick := 0; tick < unit.Series.Len(); tick++ {
		for k := 0; k < dbcatcher.KPICount; k++ {
			for d := 0; d < 5; d++ {
				sample[k][d] = unit.Series.Data[k][d].At(tick)
			}
		}
		verdict, err := det.Push(sample)
		if err != nil {
			log.Fatal(err)
		}
		if verdict == nil {
			continue
		}
		status := "healthy"
		if verdict.Abnormal {
			status = fmt.Sprintf("ABNORMAL (database %d)", verdict.AbnormalDB)
		}
		fmt.Printf("  t=%4ds  window [%d, %d)  %s\n",
			verdict.Tick*5, verdict.Start, verdict.Start+verdict.Size, status)
	}
	fmt.Println("\nThe stall at ticks [180, 216) on database 3 should appear above.")
}
