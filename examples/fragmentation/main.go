// Storage fragmentation case study (paper Fig. 12): heavy delete/insert
// churn fragments one database's storage, so its "Real Capacity" grows
// much faster than its peers' — a level-1 anomaly on a critical KPI that
// is easy to miss by eye and by per-series detectors, but obvious to
// correlation measurement.
package main

import (
	"fmt"
	"log"
	"strings"

	"dbcatcher"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
)

func main() {
	unit, err := dbcatcher.SimulateUnit(dbcatcher.UnitConfig{
		Name:    "fragmentation",
		Ticks:   480,
		Seed:    21,
		Profile: dbcatcher.TencentPeriodic,
	})
	if err != nil {
		log.Fatal(err)
	}
	const target, start, length = 1, 200, 120
	if _, err := dbcatcher.InjectAnomalies(unit, []dbcatcher.AnomalyEvent{
		{Type: dbcatcher.Fragmentation, DB: target, Start: start, Length: length, Magnitude: 2.5},
	}, 5); err != nil {
		log.Fatal(err)
	}

	fmt.Println("normalized Real Capacity trends (sparkline per database):")
	for d := 0; d < 5; d++ {
		vals := unit.Series.Data[kpi.RealCapacity][d].Values
		marker := ""
		if d == target {
			marker = "  <- fragmenting"
		}
		fmt.Printf("  db%d %s%s\n", d, spark(mathx.Normalize(vals), 60), marker)
	}

	verdicts, err := dbcatcher.DetectSeries(unit.Series, dbcatcher.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nabnormal verdicts:")
	for _, v := range verdicts {
		if !v.Abnormal {
			continue
		}
		fmt.Printf("  window [%3d, %3d): db=%d states=%v\n",
			v.Start, v.Start+v.Size, v.AbnormalDB, v.States)
	}
	fmt.Println("\nThe fragmenting database's capacity curve bends away from the")
	fmt.Println("unit trend at tick 200 — the Fig. 12 scenario.")
}

// spark renders a series as a unicode sparkline of the given width.
func spark(v []float64, width int) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	if len(v) == 0 {
		return ""
	}
	step := len(v) / width
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	for i := 0; i < len(v); i += step {
		end := i + step
		if end > len(v) {
			end = len(v)
		}
		m := mathx.Mean(v[i:end])
		idx := int(m * float64(len(ramp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}
