// Workload drift + adaptive threshold learning: the unit's workload
// shifts from a production-like profile to a TPC-C-like profile, the
// detector's performance on DBA-marked judgment records degrades below
// the 75% activation criterion (§IV-D3), and the online feedback module
// relearns the thresholds with the genetic algorithm (Algorithm 2).
package main

import (
	"fmt"
	"log"

	"dbcatcher"
	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/thresholds"
)

func main() {
	// Phase 1: learn thresholds on the original workload.
	before := labelledUnit(dbcatcher.TencentIrregular, 800, 51)
	th, trainF, err := dbcatcher.LearnThresholds(
		[]dbcatcher.LabelledUnit{before}, dbcatcher.FlexConfig{}, 52)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: thresholds learned on the original workload (train F=%.2f)\n", trainF)

	// Phase 2: the workload drifts to TPC-C. Judge it with the old
	// thresholds and collect DBA-marked judgment records.
	after := labelledUnit(dbcatcher.TPCCI, 800, 61)
	store := feedback.NewStore(512)
	oldF := judgeAndRecord(after, th, store)
	fmt.Printf("phase 2: workload drifted to TPC-C; F with old thresholds = %.2f\n", oldF)

	// Phase 3: the feedback policy decides whether to retrain.
	policy := feedback.Policy{Criterion: 0.75, MinRecords: 10, Window: 256}
	if !policy.ShouldRetrain(store) {
		fmt.Println("phase 3: performance still above the 75% criterion; no retraining needed")
		return
	}
	fmt.Println("phase 3: F below the 75% criterion -> adaptive threshold learning activates")
	learner := feedback.Learner{Searcher: thresholds.GA{Seed: 62}}
	newTh, fit, err := learner.Relearn(dbcatcher.KPICount, []thresholds.Sample{{
		Provider: detect.NewCachedProvider(detect.NewProvider(after.Series, nil, nil)),
		Labels:   after.Labels,
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("         relearned thresholds (fitness %.2f)\n", fit)

	// Phase 4: judge fresh drifted data with the new thresholds.
	fresh := labelledUnit(dbcatcher.TPCCI, 800, 71)
	newStore := feedback.NewStore(512)
	newF := judgeAndRecord(fresh, newTh, newStore)
	fmt.Printf("phase 4: F on fresh drifted data with relearned thresholds = %.2f\n", newF)
	if newF > oldF {
		fmt.Println("\nadaptive threshold learning recovered the detection performance.")
	}
}

// labelledUnit simulates one unit under the profile with injected
// anomalies.
func labelledUnit(p dbcatcher.WorkloadProfile, ticks int, seed uint64) dbcatcher.LabelledUnit {
	unit, err := dbcatcher.SimulateUnit(dbcatcher.UnitConfig{
		Name: "drift", Ticks: ticks, Seed: seed, Profile: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
		Ticks: ticks, Databases: 5, TargetRatio: 0.05,
	}, mathx.NewRNG(seed+1))
	labels, err := anomaly.Inject(unit, events, mathx.NewRNG(seed+2))
	if err != nil {
		log.Fatal(err)
	}
	return dbcatcher.LabelledUnit{Series: unit.Series, Labels: labels}
}

// judgeAndRecord detects over the unit, files DBA-marked records, and
// returns the F-Measure.
func judgeAndRecord(u dbcatcher.LabelledUnit, th dbcatcher.Thresholds, store *feedback.Store) float64 {
	verdicts, err := dbcatcher.DetectSeries(u.Series, dbcatcher.Config{Thresholds: th})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range verdicts {
		actual := false
		for t := v.Start; t < v.Start+v.Size; t++ {
			if u.Labels.Point[t] {
				actual = true
				break
			}
		}
		store.Add(feedback.Record{Start: v.Start, Size: v.Size, Predicted: v.Abnormal, Actual: actual})
	}
	return store.FMeasure(store.Len())
}
