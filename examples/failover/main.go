// Failover: at some tick a replica is promoted to primary (§II-A). The
// R-R-typed KPIs (statement counters, TPS) are only expected to correlate
// among replicas, so the detector must follow the role switch — otherwise
// it would judge the new primary against peers it no longer tracks and
// alarm on a perfectly healthy unit.
package main

import (
	"fmt"
	"log"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func main() {
	const failoverTick, newPrimary = 400, 2
	unit, err := cluster.Simulate(cluster.Config{
		Name: "failover", Ticks: 800, Seed: 13,
		Profile:  workload.TencentIrregular,
		Failover: &cluster.Failover{Tick: failoverTick, NewPrimary: newPrimary},
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(follow bool) (abnormal int) {
		o, err := monitor.NewOnline(detect.Config{
			Thresholds: window.DefaultThresholds(kpi.Count),
		}, kpi.Count, 5)
		if err != nil {
			log.Fatal(err)
		}
		sample := make([][]float64, kpi.Count)
		for k := range sample {
			sample[k] = make([]float64, 5)
		}
		for tick := 0; tick < unit.Series.Len(); tick++ {
			if follow && tick == failoverTick {
				if err := o.SetPrimary(newPrimary); err != nil {
					log.Fatal(err)
				}
			}
			for k := 0; k < kpi.Count; k++ {
				for d := 0; d < 5; d++ {
					sample[k][d] = unit.Series.Data[k][d].At(tick)
				}
			}
			v, err := o.Push(sample)
			if err != nil {
				log.Fatal(err)
			}
			if v != nil && v.Abnormal && v.Start >= failoverTick {
				abnormal++
			}
		}
		return abnormal
	}

	stale := run(false)
	followed := run(true)
	fmt.Printf("healthy unit, failover promotes db%d at tick %d:\n", newPrimary, failoverTick)
	fmt.Printf("  detector with STALE primary:    %d false alarms after the failover\n", stale)
	fmt.Printf("  detector FOLLOWING the failover: %d false alarms after the failover\n", followed)
	if followed < stale {
		fmt.Println("\nFollowing the role switch (monitor.Online.SetPrimary) keeps the")
		fmt.Println("R-R-typed KPIs judged against the correct peer set.")
	} else {
		fmt.Println("\n(no difference this run; try another seed)")
	}
}
