// Hybrid detection: the paper concedes that DBCatcher "appears to be
// powerless for multiple databases with simultaneous anomalies" because a
// unit-wide incident leaves the UKPIC phenomenon intact, and suggests
// combining it with existing methods (§V). This example shows exactly
// that: a shared-storage outage hits every database at once, pure
// DBCatcher stays silent, and the Hybrid (DBCatcher + Spectral Residual)
// catches it without giving up DBCatcher's small windows.
package main

import (
	"fmt"
	"log"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/baselines"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/ensemble"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/workload"
)

func main() {
	// Thresholds are learned under normal operation (single-database
	// anomalies), as they would be in production.
	trainDS, err := dataset.Generate(dataset.Config{
		Family: dataset.Tencent, Units: 4, Ticks: 600, Seed: 11, AnomalyRatio: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The incident: a unit-wide outage at tick 300 collapses throughput on
	// ALL five databases simultaneously — their trends stay correlated.
	rng := mathx.NewRNG(21)
	var test []*dataset.UnitData
	for i := 0; i < 3; i++ {
		u, err := cluster.Simulate(cluster.Config{
			Name: fmt.Sprintf("outage-%d", i), Ticks: 600, Seed: rng.Uint64(),
			Profile: workload.TencentIrregular, FluctuationRate: 1e-9,
		})
		if err != nil {
			log.Fatal(err)
		}
		labels, err := anomaly.Inject(u, []anomaly.Event{
			{Type: anomaly.UnitOutage, Start: 300, Length: 40, Magnitude: 0.9},
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		test = append(test, &dataset.UnitData{Unit: u, Labels: labels, Profile: workload.TencentIrregular})
	}

	pure := baselines.NewDBCatcherMethod()
	if _, err := pure.Train(trainDS.Units, 1); err != nil {
		log.Fatal(err)
	}
	pureRes, err := pure.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}

	hybrid := ensemble.NewHybrid()
	if _, err := hybrid.Train(trainDS.Units, 1); err != nil {
		log.Fatal(err)
	}
	hybridRes, err := hybrid.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("unit-wide outage (all 5 databases drop together):")
	fmt.Printf("  pure DBCatcher:  recall %5.1f%%  (UKPIC preserved -> blind, as §V concedes)\n",
		100*pureRes.Confusion.Recall())
	fmt.Printf("  %s: recall %5.1f%%  avg window %.0f points\n",
		hybrid.Name(), 100*hybridRes.Confusion.Recall(), hybridRes.AvgWindowSize)
	fmt.Println("\nThe per-series fallback covers the correlation method's blind spot;")
	fmt.Println("DBCatcher still provides the fast, localized verdicts elsewhere.")
}
