// Resource-hog case study (paper Fig. 13): an e-commerce unit where one
// database receives the same *number* of requests as its peers but each
// request is far more expensive — CPU utilization and Innodb Rows Read
// diverge while Total Requests stays aligned. Request-count monitoring
// sees nothing; indicator correlation does.
package main

import (
	"fmt"
	"log"

	"dbcatcher"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
)

func main() {
	unit, err := dbcatcher.SimulateUnit(dbcatcher.UnitConfig{
		Name:    "resource-hog",
		Ticks:   480,
		Seed:    31,
		Profile: dbcatcher.TencentIrregular,
	})
	if err != nil {
		log.Fatal(err)
	}
	const target, start, length = 1, 240, 60
	if _, err := dbcatcher.InjectAnomalies(unit, []dbcatcher.AnomalyEvent{
		{Type: dbcatcher.ResourceHog, DB: target, Start: start, Length: length, Magnitude: 1.2},
	}, 9); err != nil {
		log.Fatal(err)
	}

	fmt.Println("during the episode (means over the affected window):")
	fmt.Printf("  %-4s %16s %16s %16s\n", "db", "Total Requests", "CPU Utilization", "Rows Read")
	for d := 0; d < 5; d++ {
		req := mathx.Mean(unit.Series.Data[kpi.TotalRequests][d].Values[start : start+length])
		cpu := mathx.Mean(unit.Series.Data[kpi.CPUUtilization][d].Values[start : start+length])
		rows := mathx.Mean(unit.Series.Data[kpi.InnodbRowsRead][d].Values[start : start+length])
		marker := ""
		if d == target {
			marker = "  <- hog"
		}
		fmt.Printf("  db%-3d %16.0f %15.1f%% %16.0f%s\n", d, req, cpu, rows, marker)
	}

	verdicts, err := dbcatcher.DetectSeries(unit.Series, dbcatcher.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverdicts overlapping the episode:")
	for _, v := range verdicts {
		if v.Start+v.Size <= start || v.Start >= start+length {
			continue
		}
		status := "healthy"
		if v.Abnormal {
			status = fmt.Sprintf("ABNORMAL db=%d", v.AbnormalDB)
		}
		fmt.Printf("  window [%3d, %3d): %s\n", v.Start, v.Start+v.Size, status)
	}
	fmt.Println("\nRequests stayed balanced; only the resource KPIs betrayed db1 —")
	fmt.Println("the Fig. 13 level-2 anomaly, caught through indicator correlation.")
}
