package dbcatcher

import (
	"testing"
)

func TestEndToEndOfflineDetection(t *testing.T) {
	u, err := SimulateUnit(UnitConfig{Name: "api", Ticks: 400, Seed: 1,
		Profile: TencentIrregular, FluctuationRate: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := InjectAnomalies(u, []AnomalyEvent{
		{Type: Stall, DB: 2, Start: 160, Length: 40, Magnitude: 0.9},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := DetectSeries(u.Series, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, v := range verdicts {
		if v.Abnormal && v.Start < 200 && v.Start+v.Size > 160 {
			hit = true
			if v.AbnormalDB != 2 {
				t.Errorf("flagged db %d, want 2", v.AbnormalDB)
			}
		}
	}
	if !hit {
		t.Fatal("stall missed through the public API")
	}
	_ = labels
}

func TestEndToEndStreamingDetection(t *testing.T) {
	u, err := SimulateUnit(UnitConfig{Name: "api", Ticks: 300, Seed: 3,
		Profile: SysbenchI, FluctuationRate: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InjectAnomalies(u, []AnomalyEvent{
		{Type: Stall, DB: 1, Start: 120, Length: 40, Magnitude: 0.9},
	}, 4); err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(Config{Databases: 5})
	if err != nil {
		t.Fatal(err)
	}
	sample := make([][]float64, KPICount)
	for k := range sample {
		sample[k] = make([]float64, 5)
	}
	found := false
	for tick := 0; tick < 300; tick++ {
		for k := 0; k < KPICount; k++ {
			for d := 0; d < 5; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		v, err := det.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil && v.Abnormal && v.AbnormalDB == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("streaming detector missed the stall")
	}
}

func TestLearnThresholdsPublicAPI(t *testing.T) {
	u, err := SimulateUnit(UnitConfig{Name: "api", Ticks: 500, Seed: 5, Profile: TPCCI})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := InjectAnomalies(u, []AnomalyEvent{
		{Type: Spike, DB: 0, Start: 100, Length: 30, Magnitude: 2},
		{Type: Stall, DB: 3, Start: 300, Length: 30, Magnitude: 0.9},
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	th, f, err := LearnThresholds([]LabelledUnit{{Series: u.Series, Labels: labels}}, FlexConfig{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Alpha) != KPICount {
		t.Fatalf("learned %d alphas", len(th.Alpha))
	}
	if f <= 0 {
		t.Fatalf("training F = %v", f)
	}
	det, err := NewDetector(Config{Databases: 5, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	if got := det.Thresholds(); got.Theta != th.Theta {
		t.Fatal("thresholds not applied")
	}
}

func TestKCDFacade(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2}
	if got := KCD(x, x); got < 0.999 {
		t.Fatalf("KCD(x, x) = %v", got)
	}
}

func TestGenerateDatasetFacade(t *testing.T) {
	ds, err := GenerateDataset(DatasetConfig{Units: 2, Ticks: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Units) != 2 {
		t.Fatalf("units = %d", len(ds.Units))
	}
}

func TestDetectorRejectsBadConfig(t *testing.T) {
	bad := Config{Databases: 5}
	bad.Flex = FlexConfig{Initial: 50, Max: 10}
	if _, err := NewDetector(bad); err == nil {
		t.Fatal("invalid flex config should be rejected")
	}
}

func TestExplainWindowFacade(t *testing.T) {
	u, err := SimulateUnit(UnitConfig{Name: "x", Ticks: 160, Seed: 8,
		Profile: TencentIrregular, FluctuationRate: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InjectAnomalies(u, []AnomalyEvent{
		{Type: Stall, DB: 1, Start: 100, Length: 40, Magnitude: 0.9},
	}, 9); err != nil {
		t.Fatal(err)
	}
	exps, err := ExplainWindow(u.Series, Config{}, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if exps[1].State != Abnormal {
		t.Fatalf("db1 state = %v", exps[1].State)
	}
	if len(exps[1].Culprits()) == 0 {
		t.Fatal("no culprit KPIs named")
	}
}
