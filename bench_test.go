package dbcatcher

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`) and cover the design
// ablations called out in DESIGN.md. The experiment benches execute the
// same runners as cmd/experiments at quick scale with a single run; their
// reported time is the cost of regenerating that artifact.

import (
	"fmt"
	"testing"

	"dbcatcher/internal/baselines"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/experiments"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// --- Core-algorithm benches and ablations -------------------------------

func randomPair(n int, seed uint64) ([]float64, []float64) {
	rng := mathx.NewRNG(seed)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Norm()
		y[i] = 0.7*x[i] + 0.3*rng.Norm()
	}
	return x, y
}

// BenchmarkKCDDirect measures the O(n·m) delay scan at several window
// sizes.
func BenchmarkKCDDirect(b *testing.B) {
	for _, n := range []int{20, 60, 240, 1024} {
		x, y := randomPair(n, 1)
		opts := correlate.Options{MaxDelayFraction: 0.5, Normalize: true}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				correlate.KCD(x, y, opts)
			}
		})
	}
}

// BenchmarkKCDFFT is the O(n log n) ablation of the same computation
// (DESIGN.md: direct vs FFT cross-correlation).
func BenchmarkKCDFFT(b *testing.B) {
	for _, n := range []int{20, 60, 240, 1024} {
		x, y := randomPair(n, 1)
		opts := correlate.Options{MaxDelayFraction: 0.5, Normalize: true, UseFFT: true}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				correlate.KCD(x, y, opts)
			}
		})
	}
}

// BenchmarkKCDDelayScan ablates the delay budget: the paper's full n/2
// scan vs the detection default capped at ±4 points.
func BenchmarkKCDDelayScan(b *testing.B) {
	x, y := randomPair(60, 2)
	for _, c := range []struct {
		name string
		opts correlate.Options
	}{
		{"full-n/2", correlate.Options{MaxDelayFraction: 0.5, Normalize: true}},
		{"capped-4", correlate.DetectionOptions()},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				correlate.KCD(x, y, c.opts)
			}
		})
	}
}

// benchUnit simulates one healthy unit for detection benches.
func benchUnit(b *testing.B, ticks int) *cluster.Unit {
	b.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "bench", Ticks: ticks, Seed: 9, Profile: workload.TencentIrregular,
	})
	if err != nil {
		b.Fatal(err)
	}
	return u
}

// BenchmarkBuildMatrices measures one window's Q correlation matrices (the
// dominant §IV-D4 component) across the engine variants: the seed's
// allocating measure-closure path, the allocation-lean scratch engine, and
// the parallel scratch engine. cmd/bench records the same three variants
// into BENCH_core.json.
func BenchmarkBuildMatrices(b *testing.B) {
	u := benchUnit(b, 200)
	for _, w := range []int{20, 60} {
		w := w
		run := func(name string, e *correlate.Engine) {
			b.Run(fmt.Sprintf("w=%d/%s", w, name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.BuildMatrices(u.Series, 0, w, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		run("serial-alloc", correlate.NewMeasureEngine(correlate.KCDMeasure(correlate.DetectionOptions()), 1))
		run("serial-scratch", correlate.NewEngine(correlate.DetectionOptions(), 1))
		run("parallel-scratch", correlate.NewEngine(correlate.DetectionOptions(), 0))
	}
}

// BenchmarkKCDScratch isolates the pair-level win: the allocating KCD call
// vs the same computation through a warm reusable scratch.
func BenchmarkKCDScratch(b *testing.B) {
	x, y := randomPair(60, 3)
	opts := correlate.DetectionOptions()
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			correlate.KCDWithDelay(x, y, opts)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		s := correlate.NewScratch()
		for i := 0; i < b.N; i++ {
			correlate.KCDWithDelayScratch(x, y, opts, s)
		}
	})
}

// BenchmarkDetectRun measures a full offline detection pass over one unit
// (points/sec throughput drives the §IV-D4 projection), serial and with
// the per-window fan-out.
func BenchmarkDetectRun(b *testing.B) {
	u := benchUnit(b, 1200)
	for _, c := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		cfg := detect.Config{Thresholds: window.DefaultThresholds(kpi.Count), Workers: c.workers}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := detect.Run(u.Series, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(1200*5*kpi.Count), "points/op")
		})
	}
}

// BenchmarkOnlinePush measures the streaming path: one 5-second sample
// through the data processing module and judge.
func BenchmarkOnlinePush(b *testing.B) {
	u := benchUnit(b, 1200)
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
	}, kpi.Count, 5)
	if err != nil {
		b.Fatal(err)
	}
	sample := make([][]float64, kpi.Count)
	for k := range sample {
		sample[k] = make([]float64, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick := i % 1200
		for k := 0; k < kpi.Count; k++ {
			for d := 0; d < 5; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		if _, err := o.Push(sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGAThresholdSearch measures one adaptive-threshold relearning
// (Algorithm 2) over a cached labelled unit.
func BenchmarkGAThresholdSearch(b *testing.B) {
	u := benchUnit(b, 600)
	labels := benchLabels(b, u)
	provider := detect.NewCachedProvider(detect.NewProvider(u.Series, nil, nil))
	fitness := thresholds.DetectorFitness([]thresholds.Sample{
		{Provider: provider, Labels: labels},
	}, window.DefaultFlexConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		thresholds.GA{Seed: uint64(i + 1), Population: 16, Generations: 10}.Search(kpi.Count, fitness)
	}
}

func benchLabels(b *testing.B, u *cluster.Unit) *Labels {
	b.Helper()
	labels, err := InjectAnomalies(u, []AnomalyEvent{
		{Type: Stall, DB: 2, Start: 200, Length: 40, Magnitude: 0.9},
		{Type: Spike, DB: 1, Start: 400, Length: 30, Magnitude: 2},
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	return labels
}

// BenchmarkBaselineScorers measures per-series scoring cost of each
// baseline detector.
func BenchmarkBaselineScorers(b *testing.B) {
	u := benchUnit(b, 1200)
	series := u.Series.Data[kpi.RequestsPerSecond][1].Values
	multi := make([][]float64, kpi.Count)
	for k := range multi {
		multi[k] = u.Series.Data[k][1].Values
	}
	srcnn := baselines.NewSRCNN(1)
	srcnn.Fit([][]float64{series})
	omni := baselines.NewOmniAnomaly(1)
	omni.SamplesPerEpoch = 200
	omni.Fit(multi)
	js := baselines.NewJumpStarter(1)
	js.Fit(nil)

	b.Run("FFT", func(b *testing.B) {
		d := baselines.FFTDetector{}
		for i := 0; i < b.N; i++ {
			d.Scores(series)
		}
	})
	b.Run("SR", func(b *testing.B) {
		d := baselines.SRDetector{}
		for i := 0; i < b.N; i++ {
			d.Scores(series)
		}
	})
	b.Run("SR-CNN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srcnn.Scores(series)
		}
	})
	b.Run("OmniAnomaly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			omni.ScoresMulti(multi)
		}
	})
	b.Run("JumpStarter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			js.ScoresMulti(multi)
		}
	})
}

// --- Experiment regenerators (one bench per table/figure) ---------------

// benchConfig is the quick-scale single-run configuration the experiment
// benches execute.
func benchConfig(seed uint64) experiments.Config {
	return experiments.Config{Runs: 1, Seed: seed}
}

func runExperimentBench(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(name, benchConfig(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates the indicator/correlation-type validation.
func BenchmarkTableII(b *testing.B) { runExperimentBench(b, "tableII") }

// BenchmarkTableIII regenerates the dataset statistics table.
func BenchmarkTableIII(b *testing.B) { runExperimentBench(b, "tableIII") }

// BenchmarkFigure3 regenerates the UKPIC correlation matrices.
func BenchmarkFigure3(b *testing.B) { runExperimentBench(b, "figure3") }

// BenchmarkFigure5 regenerates the fluctuation-vs-window-length study.
func BenchmarkFigure5(b *testing.B) { runExperimentBench(b, "figure5") }

// BenchmarkFigure8 regenerates the mixed-dataset comparison (and with it
// Tables V and VI).
func BenchmarkFigure8(b *testing.B) { runExperimentBench(b, "figure8") }

// BenchmarkFigure9 regenerates the irregular-dataset comparison (and
// Table VII).
func BenchmarkFigure9(b *testing.B) { runExperimentBench(b, "figure9") }

// BenchmarkFigure10 regenerates the periodic-dataset comparison (and
// Table VIII).
func BenchmarkFigure10(b *testing.B) { runExperimentBench(b, "figure10") }

// BenchmarkTableIX regenerates the workload-drift retraining times.
func BenchmarkTableIX(b *testing.B) { runExperimentBench(b, "tableIX") }

// BenchmarkTableX regenerates the correlation-measurement ablation
// (MM-Pearson / MM-DTW / MM-KCD / AMM-KCD).
func BenchmarkTableX(b *testing.B) { runExperimentBench(b, "tableX") }

// BenchmarkFigure11 regenerates the GA vs SAA vs random-search comparison.
func BenchmarkFigure11(b *testing.B) { runExperimentBench(b, "figure11") }

// BenchmarkComponentTime regenerates the §IV-D4 component-time split and
// the 100 MB / 120 h projection.
func BenchmarkComponentTime(b *testing.B) { runExperimentBench(b, "componenttime") }

// BenchmarkDiagnosis regenerates the diagnosis-accuracy extension table.
func BenchmarkDiagnosis(b *testing.B) { runExperimentBench(b, "diagnosis") }

// BenchmarkHybrid regenerates the ensemble extension table.
func BenchmarkHybrid(b *testing.B) { runExperimentBench(b, "hybrid") }
