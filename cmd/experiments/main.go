// Command experiments regenerates the paper's tables and figures against
// the simulated datasets.
//
// Usage:
//
//	experiments -run figure8            # one experiment (figure + tables V, VI)
//	experiments -run all -runs 5        # the whole evaluation, 5 runs each
//	experiments -run tableIII -scale 1  # paper-sized datasets
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbcatcher/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment to run (see -list)")
		runs   = flag.Int("runs", 3, "repeated runs for mean/min/max (paper: 20)")
		scale  = flag.Float64("scale", 0, "dataset scale toward the paper's Table III (1 = full)")
		seed   = flag.Uint64("seed", 1, "random seed")
		conc   = flag.Int("concurrency", 0, "per-unit worker pool (0 = GOMAXPROCS, 1 = serial; results identical)")
		list   = flag.Bool("list", false, "list experiments and exit")
		check  = flag.Bool("check", false, "with -run scenarios: fail if any scenario's F-measure drops below its pinned floor")
		quiet  = flag.Bool("q", false, "suppress progress output")
		format = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	cfg := experiments.Config{Runs: *runs, Scale: *scale, Seed: *seed, Concurrency: *conc}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	var tables []*experiments.Table
	var err error
	var floorErr error
	if *check {
		if strings.ToLower(*run) != "scenarios" {
			fmt.Fprintln(os.Stderr, "experiments: -check applies to -run scenarios")
			os.Exit(2)
		}
		var t *experiments.Table
		t, floorErr = experiments.CheckScenarios(cfg)
		if t != nil {
			tables = []*experiments.Table{t}
		} else if floorErr != nil {
			err = floorErr
			floorErr = nil
		}
	} else {
		tables, err = experiments.Run(*run, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if *format == "csv" {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	if floorErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", floorErr)
		os.Exit(1)
	}
}
