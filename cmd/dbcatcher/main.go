// Command dbcatcher runs offline DBCatcher detection over a labelled
// dataset: generate (or load) a dataset, optionally learn thresholds on
// the training half with the genetic algorithm, detect on the testing
// half, and print window-level metrics per unit and overall.
//
// Usage:
//
//	dbcatcher -family tencent -units 8 -ticks 1200 -seed 1 -learn
//	dbcatcher -load dataset.json.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbcatcher/internal/baselines"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/rootcause"
	"dbcatcher/internal/tracefile"
	"dbcatcher/internal/window"
)

func main() {
	var (
		family  = flag.String("family", "tencent", "dataset family: tencent, sysbench, tpcc")
		units   = flag.Int("units", 8, "number of units to generate")
		ticks   = flag.Int("ticks", 1200, "points per series (5 s apart)")
		seed    = flag.Uint64("seed", 1, "random seed")
		load    = flag.String("load", "", "load a dataset saved by datagen instead of generating")
		trace   = flag.String("trace", "", "detect over a CSV unit trace (tracefile format); skips dataset mode")
		learn   = flag.Bool("learn", true, "learn thresholds on the training half (GA); otherwise use defaults")
		split   = flag.Float64("split", 0.5, "train/test split fraction")
		verbose = flag.Bool("v", false, "print per-unit results")
		explain = flag.Bool("explain", false, "print incident reports with culprit KPIs")
	)
	flag.Parse()

	if *trace != "" {
		if err := runTrace(*trace, *explain); err != nil {
			fatal(err)
		}
		return
	}

	ds, err := obtainDataset(*load, *family, *units, *ticks, *seed)
	if err != nil {
		fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("dataset %s: %d units, %d dims, %d points, %.2f%% abnormal\n",
		st.Name, st.Units, st.Dimensions, st.TotalPoints, 100*st.AbnormalRatio)

	train, test, err := ds.Split(*split)
	if err != nil {
		fatal(err)
	}

	th := window.DefaultThresholds(kpi.Count)
	if *learn {
		fmt.Println("learning thresholds on the training half (genetic algorithm)...")
		m := baselines.NewDBCatcherMethod()
		info, err := m.Train(train.Units, *seed)
		if err != nil {
			fatal(err)
		}
		th = m.Thresholds()
		fmt.Printf("learned in %.2fs: train F=%.3f, theta=%.3f, tolerance=%d\n",
			info.Duration.Seconds(), info.BestF, th.Theta, th.MaxTolerance)
	}

	var total metrics.Confusion
	var sizeSum float64
	var sizeN int
	for _, u := range test.Units {
		verdicts, _, err := detect.Run(u.Unit.Series, detect.Config{Thresholds: th})
		if err != nil {
			fatal(err)
		}
		c, err := detect.Evaluate(verdicts, u.Labels)
		if err != nil {
			fatal(err)
		}
		total.Merge(c)
		for _, v := range verdicts {
			sizeSum += float64(v.Size)
			sizeN++
		}
		if *verbose {
			fmt.Printf("  %-24s %s diag=%.2f\n", u.Unit.Config.Name, c,
				detect.DiagnosisAccuracy(verdicts, u.Labels))
		}
		if *explain {
			provider := detect.NewProvider(u.Unit.Series, nil, nil)
			incidents, err := rootcause.Analyze(provider, detect.Config{Thresholds: th}, verdicts, 0)
			if err != nil {
				fatal(err)
			}
			for _, inc := range incidents {
				fmt.Printf("    incident: %s\n", inc)
			}
		}
	}
	fmt.Printf("test result: %s\n", total)
	if sizeN > 0 {
		fmt.Printf("average window size: %.1f points (%.0f s of data per verdict)\n",
			sizeSum/float64(sizeN), sizeSum/float64(sizeN)*5)
	}
}

// runTrace detects over an unlabelled CSV trace and prints verdicts and
// incident reports.
func runTrace(path string, explain bool) error {
	u, err := tracefile.ReadFile(path, "trace")
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d databases, %d points (%.1f min of monitoring data)\n",
		u.Databases, u.Len(), float64(u.Len()*5)/60)
	th := window.DefaultThresholds(u.KPIs)
	verdicts, _, err := detect.Run(u, detect.Config{Thresholds: th})
	if err != nil {
		return err
	}
	abnormal := 0
	for _, v := range verdicts {
		if v.Abnormal {
			abnormal++
			fmt.Printf("  ABNORMAL window [%d, %d): db=%d\n", v.Start, v.Start+v.Size, v.AbnormalDB)
		}
	}
	fmt.Printf("%d windows judged, %d abnormal\n", len(verdicts), abnormal)
	if explain {
		provider := detect.NewProvider(u, nil, nil)
		incidents, err := rootcause.Analyze(provider, detect.Config{Thresholds: th}, verdicts, 0)
		if err != nil {
			return err
		}
		for _, inc := range incidents {
			fmt.Printf("  incident: %s\n", inc)
		}
	}
	return nil
}

func obtainDataset(load, family string, units, ticks int, seed uint64) (*dataset.Dataset, error) {
	if load != "" {
		return dataset.Load(load)
	}
	var f dataset.Family
	switch strings.ToLower(family) {
	case "tencent":
		f = dataset.Tencent
	case "sysbench":
		f = dataset.Sysbench
	case "tpcc":
		f = dataset.TPCC
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
	return dataset.Generate(dataset.Config{Family: f, Units: units, Ticks: ticks, Seed: seed})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbcatcher:", err)
	os.Exit(1)
}
