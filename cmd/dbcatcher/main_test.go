package main

import (
	"path/filepath"
	"testing"
)

func TestObtainDatasetFamilies(t *testing.T) {
	for _, fam := range []string{"tencent", "Sysbench", "TPCC"} {
		ds, err := obtainDataset("", fam, 2, 100, 1)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if len(ds.Units) != 2 {
			t.Fatalf("%s: %d units", fam, len(ds.Units))
		}
	}
	if _, err := obtainDataset("", "nope", 2, 100, 1); err == nil {
		t.Fatal("unknown family should error")
	}
	if _, err := obtainDataset(filepath.Join(t.TempDir(), "missing.json"), "", 0, 0, 0); err == nil {
		t.Fatal("missing load path should error")
	}
}
