// Command datagen generates a labelled DBCatcher dataset (the Table III
// shape) and writes it to disk as JSON (gzipped when the path ends in
// ".gz") for external tooling or reproducible reuse.
//
// Usage:
//
//	datagen -family sysbench -units 50 -ticks 2592 -seed 7 -out sysbench.json.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbcatcher/internal/dataset"
)

func main() {
	var (
		family = flag.String("family", "tencent", "dataset family: tencent, sysbench, tpcc")
		units  = flag.Int("units", 0, "number of units (0 = the paper's Table III count)")
		ticks  = flag.Int("ticks", 0, "points per series (0 = 2592, the Table III shape)")
		seed   = flag.Uint64("seed", 1, "random seed")
		ratio  = flag.Float64("anomaly-ratio", 0, "abnormal tick fraction (0 = the family's Table III ratio)")
		out    = flag.String("out", "", "output path (.json or .json.gz); required")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	var f dataset.Family
	switch strings.ToLower(*family) {
	case "tencent":
		f = dataset.Tencent
	case "sysbench":
		f = dataset.Sysbench
	case "tpcc":
		f = dataset.TPCC
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown family %q\n", *family)
		os.Exit(2)
	}
	ds, err := dataset.Generate(dataset.Config{
		Family:       f,
		Units:        *units,
		Ticks:        *ticks,
		Seed:         *seed,
		AnomalyRatio: *ratio,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Printf("generated %s: %d units, %d points, %.2f%% abnormal\n",
		st.Name, st.Units, st.TotalPoints, 100*st.AbnormalRatio)
	if err := ds.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	info, err := os.Stat(*out)
	if err == nil {
		fmt.Printf("wrote %s (%.1f MB)\n", *out, float64(info.Size())/1e6)
	}
}
