// Command bench measures the correlation engine's core hot paths with the
// standard library benchmark driver and writes the results as JSON, so the
// repository can track a committed baseline (BENCH_core.json) across
// changes.
//
// Usage:
//
//	bench                      # print JSON to stdout
//	bench -o BENCH_core.json   # rewrite the tracked baseline
//	bench -benchtime 2s        # steadier numbers
//
// The emitted document records, per benchmark, ns/op, B/op, and allocs/op,
// plus derived ratios: the parallel-vs-serial matrix-build speedup and the
// allocation reduction of the scratch engine against the seed's allocating
// measure-closure path. Speedups are bounded by gomaxprocs — the file
// records the value the run actually had.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/fleet"
	"dbcatcher/internal/incident"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/relearn"
	"dbcatcher/internal/scrape"
	"dbcatcher/internal/server"
	"dbcatcher/internal/store"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// Schema versions the JSON layout for downstream tooling.
const Schema = "dbcatcher-bench/1"

// Entry is one benchmark's measurement.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the full document written to BENCH_core.json.
type Report struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU is the host's logical core count — recorded alongside
	// GOMAXPROCS so a baseline generated with a restricted GOMAXPROCS is
	// distinguishable from one generated on a genuinely smaller host.
	NumCPU      int     `json:"num_cpu"`
	GeneratedAt string  `json:"generated_at"`
	Window      int     `json:"window"`
	KPIs        int     `json:"kpis"`
	Databases   int     `json:"databases"`
	Benches     []Entry `json:"benches"`
	// BuildSpeedupParallel = serial-scratch ns/op over parallel-scratch
	// ns/op for the matrix build; approaches the core count on
	// multi-core hosts and ~1.0 when gomaxprocs is 1.
	BuildSpeedupParallel float64 `json:"build_speedup_parallel"`
	// BuildAllocReduction = allocs/op of the seed-equivalent allocating
	// build over the scratch engine's.
	BuildAllocReduction float64 `json:"build_alloc_reduction"`
	// KCDAllocsScratch is the scratch path's allocs/op — the zero-alloc
	// contract, asserted by TestKCDScratchZeroAlloc.
	KCDAllocsScratch int64 `json:"kcd_allocs_scratch"`
	// ScrapeAssembleAllocs is the scrape round assembler's allocs/op —
	// its zero-alloc contract, asserted by TestAssemblerShapesAndZeroAlloc.
	ScrapeAssembleAllocs int64 `json:"scrape_assemble_allocs"`
	// PromParseAllocs is the Prometheus text-exposition parser's allocs/op
	// decoding a healthy body into a warm payload — its zero-alloc
	// contract, the real-exporter counterpart of ScrapeAssembleAllocs.
	PromParseAllocs int64 `json:"prom_parse_allocs"`
	// IncidentIngestAllocs is the incident aggregator's steady-state
	// allocs/op for a 32-unit reinforcing round — its zero-alloc contract,
	// asserted by TestSteadyStateDedupIsAllocationFree.
	IncidentIngestAllocs int64 `json:"incident_ingest_allocs"`
	// FleetRoundScale32 = ns/op of one 32-shard fleet round over 32x the
	// 1-shard round. 1.0 means round latency grows exactly linearly with
	// shard count; below 1.0 the scheduler amortizes per-round overhead
	// across shards. Like the build speedup it is bounded by gomaxprocs:
	// with a single core the shards serialize and ~1.0 is the floor.
	FleetRoundScale32 float64 `json:"fleet_round_scale_32"`
}

func measure(name string, fn func(b *testing.B)) Entry {
	r := testing.Benchmark(fn)
	return Entry{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

func main() {
	var (
		out       = flag.String("o", "", "write JSON to this file instead of stdout")
		diff      = flag.String("diff", "", "compare allocs/op against this baseline JSON and exit non-zero on regressions instead of writing a report")
		benchtime = flag.Duration("benchtime", time.Second, "per-benchmark measuring time")
		win       = flag.Int("window", 60, "correlation window length in ticks")
	)
	flag.Parse()
	flag.Set("test.benchtime", benchtime.String())

	const dbs = 5
	u, err := cluster.Simulate(cluster.Config{
		Name: "bench", Databases: dbs, Ticks: 600, Seed: 9,
		Profile: workload.TencentIrregular,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	opts := correlate.DetectionOptions()
	x, y := randomPair(*win, 3)

	rep := Report{
		Schema:      Schema,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Window:      *win,
		KPIs:        kpi.Count,
		Databases:   dbs,
	}

	add := func(e Entry) {
		rep.Benches = append(rep.Benches, e)
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	add(measure("kcd/alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			correlate.KCDWithDelay(x, y, opts)
		}
	}))
	scratch := correlate.NewScratch()
	kcdScratch := measure("kcd/scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			correlate.KCDWithDelayScratch(x, y, opts, scratch)
		}
	})
	add(kcdScratch)

	buildWith := func(e *correlate.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.BuildMatrices(u.Series, 0, *win, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// serial-alloc routes every pair through the measure closure — the
	// seed's allocation behaviour before the scratch engine existed.
	serialAlloc := measure("build_matrices/serial-alloc",
		buildWith(correlate.NewMeasureEngine(correlate.KCDMeasure(opts), 1)))
	add(serialAlloc)
	serialScratch := measure("build_matrices/serial-scratch",
		buildWith(correlate.NewEngine(opts, 1)))
	add(serialScratch)
	parallelScratch := measure("build_matrices/parallel-scratch",
		buildWith(correlate.NewEngine(opts, 0)))
	add(parallelScratch)

	for _, c := range []struct {
		name    string
		workers int
	}{{"detect_run/serial", 1}, {"detect_run/parallel", 0}} {
		cfg := detect.Config{Thresholds: window.DefaultThresholds(kpi.Count), Workers: c.workers}
		add(measure(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := detect.Run(u.Series, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// The incremental streaming tier. kcd/streaming-push is the per-tick
	// steady-state cost at capacity: one push (with the subtractive window
	// slide) plus a full matrix scoring pass from the rolling statistics —
	// the monitor's per-tick worst case, zero allocations warm.
	strm, err := correlate.NewStream(kpi.Count, dbs, opts, *win)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	streamSample := make([][]float64, kpi.Count)
	for k := range streamSample {
		streamSample[k] = make([]float64, dbs)
	}
	streamMats := make([]*correlate.Matrix, kpi.Count)
	for k := range streamMats {
		streamMats[k] = correlate.NewMatrix(dbs)
	}
	streamTick := 0
	stage := func() {
		for k := 0; k < kpi.Count; k++ {
			for d := 0; d < dbs; d++ {
				streamSample[k][d] = u.Series.Data[k][d].At(streamTick % 600)
			}
		}
		streamTick++
	}
	add(measure("kcd/streaming-push", func(b *testing.B) {
		b.ReportAllocs()
		for strm.Len() < *win {
			stage()
			if err := strm.Push(streamSample); err != nil {
				b.Fatal(err)
			}
		}
		if err := strm.ScoreInto(streamMats, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stage()
			if err := strm.Push(streamSample); err != nil {
				b.Fatal(err)
			}
			if err := strm.ScoreInto(streamMats, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// detect_run/streaming is the full offline pass through a reusable
	// Streamer: same rounds as detect_run/serial, O(1)-updated correlation
	// state, and a warm pass allocates nothing.
	runner, err := detect.NewStreamer(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count), Streaming: true,
	}, kpi.Count, dbs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	var streamVerdicts []detect.Verdict
	if streamVerdicts, err = runner.RunAppend(u.Series, streamVerdicts[:0]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	add(measure("detect_run/streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var runErr error
			if streamVerdicts, runErr = runner.RunAppend(u.Series, streamVerdicts[:0]); runErr != nil {
				b.Fatal(runErr)
			}
		}
	}))

	// detect_run/streaming-window is one whole W-point judgment round —
	// the paper's maximum window over the standard 14x5 unit — through the
	// streaming tier: the per-round detection cost the online monitor pays,
	// sub-millisecond with zero allocations.
	winUnit := timeseries.NewUnitSeries("win", kpi.Count, dbs)
	for k := 0; k < kpi.Count; k++ {
		for d := 0; d < dbs; d++ {
			winUnit.Data[k][d].Values = append([]float64(nil), u.Series.Data[k][d].Values[:*win]...)
		}
	}
	winRunner, err := detect.NewStreamer(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       window.FlexConfig{Initial: *win, Max: *win, ExhaustState: window.Abnormal},
		Streaming:  true,
	}, kpi.Count, dbs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	var winVerdicts []detect.Verdict
	if winVerdicts, err = winRunner.RunAppend(winUnit, winVerdicts[:0]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	add(measure("detect_run/streaming-window", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var runErr error
			if winVerdicts, runErr = winRunner.RunAppend(winUnit, winVerdicts[:0]); runErr != nil {
				b.Fatal(runErr)
			}
		}
	}))

	// Durable-state paths: the WAL append (per-verdict persistence cost,
	// no fsync so the framing/encode cost is what's measured) and a full
	// recovery of a populated data directory.
	add(measure("wal/append", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "dbcatcher-bench-wal")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		st, _, err := store.Open(dir, store.Options{Fsync: store.FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		rec := store.VerdictRecord{
			Tick: 60, Start: 0, Size: 60, AbnormalDB: -1,
			States: []uint8{0, 0, 0, 0, 0},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Tick = i
			if _, err := st.AppendVerdict(rec); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(measure("wal/recovery", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "dbcatcher-bench-rec")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		st, _, err := store.Open(dir, store.Options{Fsync: store.FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if _, err := st.AppendVerdict(store.VerdictRecord{
				Tick: i, Size: 60, AbnormalDB: -1, States: []uint8{0, 0, 0, 0, 0},
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.WriteSnapshot(store.SnapshotState{Seq: 500}); err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, rec, err := store.Open(dir, store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if len(rec.Records) == 0 {
				b.Fatal("recovery surfaced no records")
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The scrape round assembler: per-target KPI vectors (one of them
	// missing, so the NaN fill path is part of the warm loop) into the
	// monitor's sample shape. The warm path must stay allocation-free —
	// this is the per-round assembly cost in scrape mode.
	vecs := make([][]float64, dbs)
	for d := 0; d < dbs-1; d++ {
		v := make([]float64, kpi.Count)
		for k := range v {
			v[k] = u.Series.Data[k][d].At(0)
		}
		vecs[d] = v
	}
	asm := scrape.NewAssembler(kpi.Count, dbs)
	scrapeAssemble := measure("scrape/assemble", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := asm.Assemble(vecs); err != nil {
				b.Fatal(err)
			}
		}
	})
	add(scrapeAssemble)

	// The wire parsers: one healthy exporter body (with a NaN gap cell, so
	// the gap literal is part of the warm loop) decoded into a reused
	// payload, per format. The prom path is the per-target per-round decode
	// cost in real-exporter mode and must match the JSON path's zero-alloc
	// contract — neither parser may allocate once the payload's vector has
	// its capacity.
	wire := make([]float64, kpi.Count)
	for k := range wire {
		wire[k] = u.Series.Data[k][0].At(0)
	}
	wire[kpi.Count/2] = math.NaN()
	var parsePayload scrape.Payload
	jsonBody := scrape.AppendBody(nil, &scrape.Payload{Tick: 1, DB: 0, Values: wire}, scrape.FormatJSON)
	parseJSON := measure("scrape/parse-json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scrape.ParseBody(jsonBody, &parsePayload, scrape.FormatJSON); err != nil {
				b.Fatal(err)
			}
		}
	})
	add(parseJSON)
	promBody := scrape.AppendBody(nil, &scrape.Payload{Tick: 1, DB: 0, Values: wire}, scrape.FormatProm)
	parseProm := measure("scrape/parse-prom", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scrape.ParseBody(promBody, &parsePayload, scrape.FormatProm); err != nil {
				b.Fatal(err)
			}
		}
	})
	add(parseProm)

	// One genome evaluation of the relearn supervisor's holdout fitness:
	// replay the detector over materialized judgment-record samples whose
	// providers cache the correlation matrices, so this is the steady-state
	// per-candidate cost of the background threshold search (the GA pays it
	// population x generations times per retrain attempt).
	recs := make([]feedback.Record, 0, 40)
	for i := 0; i < 40; i++ {
		recs = append(recs, feedback.Record{Start: i * 14, Size: 20, Actual: i%5 == 0})
	}
	samples, droppedRecs := relearn.Materialize(relearn.SeriesSource{U: u.Series}, recs)
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no relearn samples materialized")
		os.Exit(1)
	}
	fit := thresholds.DetectorFitness(samples, window.FlexConfig{})
	cand := window.DefaultThresholds(kpi.Count)
	fit(cand) // warm the cached providers so the matrix build is off-path
	add(measure("relearn/fitness-eval", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := fit(cand); s < 0 || s > 1 {
				b.Fatalf("fitness out of range: %v", s)
			}
		}
	}))
	if droppedRecs > 0 {
		fmt.Fprintf(os.Stderr, "relearn/fitness-eval: %d of %d records dropped\n", droppedRecs, len(recs))
	}

	// fleet/round-N: one whole fleet judgment round through the shard
	// scheduler — every unit ingests W ticks and emits exactly one
	// fixed-window verdict. All shards read the same staged tick (judges
	// copy during ingestion), so the measurement isolates scheduling and
	// detection cost from sample construction. The derived scale ratio
	// (fleet_round_scale_32) tracks how round latency grows with shard
	// count.
	const fleetWin = 20
	fleetTicks := make([][][]float64, fleetWin)
	for t := 0; t < fleetWin; t++ {
		sample := make([][]float64, kpi.Count)
		for k := range sample {
			sample[k] = make([]float64, dbs)
			for d := 0; d < dbs; d++ {
				sample[k][d] = u.Series.Data[k][d].At(t)
			}
		}
		fleetTicks[t] = sample
	}
	fleetBench := func(n int) Entry {
		units := make([]fleet.Pusher, n)
		for i := range units {
			o, err := monitor.NewOnline(detect.Config{
				Thresholds: window.DefaultThresholds(kpi.Count),
				Flex:       window.FlexConfig{Initial: fleetWin, Max: fleetWin, ExhaustState: window.Abnormal},
				Workers:    1,
			}, kpi.Count, dbs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			units[i] = o
		}
		mon, err := fleet.NewMonitor(units, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		batch := make([][][]float64, n)
		return measure(fmt.Sprintf("fleet/round-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for t := 0; t < fleetWin; t++ {
					for j := range batch {
						batch[j] = fleetTicks[t]
					}
					if _, err := mon.Push(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
	fleet1 := fleetBench(1)
	add(fleet1)
	add(fleetBench(8))
	fleet32 := fleetBench(32)
	add(fleet32)

	// server/status: the API status document under dashboard polling. The
	// cached variant is the steady-state hit — a conditional GET against an
	// unchanged generation answers 304 from the cached document without
	// re-serializing anything — and the rebuild variant forces the full
	// re-marshal an actual state change pays. Middleware timeout is
	// disabled so the measurement is the handler path, not a per-request
	// watchdog goroutine.
	statusOnline, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       window.FlexConfig{Initial: fleetWin, Max: fleetWin, ExhaustState: window.Abnormal},
		Workers:    1,
	}, kpi.Count, dbs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	statusSrv := server.New(statusOnline, "bench", 64)
	statusSrv.SetRequestTimeout(0)
	for t := 0; t < 3*fleetWin; t++ {
		if _, err := statusSrv.Push(fleetTicks[t%fleetWin]); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	statusHandler := statusSrv.Handler()
	statusReq, err := http.NewRequest(http.MethodGet, "/api/status", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	warm := httptest.NewRecorder()
	statusHandler.ServeHTTP(warm, statusReq)
	etag := warm.Header().Get("ETag")
	if warm.Code != http.StatusOK || etag == "" {
		fmt.Fprintf(os.Stderr, "bench: status warmup = %d, etag %q\n", warm.Code, etag)
		os.Exit(1)
	}
	condReq := statusReq.Clone(statusReq.Context())
	condReq.Header.Set("If-None-Match", etag)
	sink := &discardResponseWriter{header: make(http.Header)}
	statusCached := measure("server/status-cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink.code = 0
			statusHandler.ServeHTTP(sink, condReq)
			if sink.code != http.StatusNotModified {
				b.Fatalf("cached status = %d", sink.code)
			}
		}
	})
	add(statusCached)
	add(measure("server/status-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			statusSrv.Invalidate()
			sink.code = 0
			statusHandler.ServeHTTP(sink, statusReq)
			if sink.code != http.StatusOK {
				b.Fatalf("rebuilt status = %d", sink.code)
			}
		}
	}))

	// incident/ingest: the incident aggregator's steady-state dedup path —
	// one 32-unit round where every unit reinforces its already-open
	// incident. This is the per-round cost while a fleet-wide fault is
	// ongoing (the worst sustained load) and it must stay allocation-free:
	// merge hits update incidents in place and the close sweep reuses its
	// scratch slice. The persist hook is attached so the measured path is
	// the journaling configuration the daemon actually runs.
	const ingestUnits = 32
	iagg := incident.New(incident.Config{ProximityTicks: 64, CloseAfter: 1 << 30})
	iagg.SetPersist(func(incident.Transition) {})
	ingestEvents := make([]incident.Event, ingestUnits)
	ingestTick := 100
	ingestRound := func() {
		for i := range ingestEvents {
			ingestEvents[i] = incident.Event{
				Unit: i, DB: i % dbs, KPIs: incident.KPISet(0).With(2).With(12),
				Start: ingestTick - 20, End: ingestTick,
			}
		}
		iagg.ObserveRound(ingestTick, ingestEvents)
		ingestTick += 4
	}
	ingestRound() // first round opens the incidents; every later one merges
	incidentIngest := measure("incident/ingest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ingestRound()
		}
	})
	add(incidentIngest)

	rep.BuildSpeedupParallel = serialScratch.NsPerOp / parallelScratch.NsPerOp
	rep.BuildAllocReduction = float64(serialAlloc.AllocsPerOp) / float64(serialScratch.AllocsPerOp)
	rep.KCDAllocsScratch = kcdScratch.AllocsPerOp
	rep.ScrapeAssembleAllocs = scrapeAssemble.AllocsPerOp
	rep.PromParseAllocs = parseProm.AllocsPerOp
	rep.IncidentIngestAllocs = incidentIngest.AllocsPerOp
	rep.FleetRoundScale32 = fleet32.NsPerOp / (32 * fleet1.NsPerOp)

	if *diff != "" {
		os.Exit(diffBaseline(*diff, rep))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (speedup %.2fx, alloc reduction %.1fx)\n",
		*out, rep.BuildSpeedupParallel, rep.BuildAllocReduction)
}

// diffBaseline compares the fresh run's allocs/op against the committed
// baseline and returns the process exit code: 1 when any benchmark
// allocates more per op than the baseline records, 0 otherwise. Only
// allocs/op is gated — it is deterministic per op, while ns/op moves with
// the host and load. Fan-out benchmarks (fleet/round-N) carry ±1 runtime
// jitter from goroutine allocation, so the gate allows 0.1% relative
// slack; zero-alloc contracts stay exact because 0.1% of 0 is 0.
// Benchmarks absent from the baseline are reported but never fail the
// diff (regenerate the baseline to start gating them).
func diffBaseline(path string, rep Report) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff:", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: %s: %v\n", path, err)
		return 1
	}
	if base.Schema != Schema {
		fmt.Fprintf(os.Stderr, "bench-diff: %s has schema %q, want %q\n", path, base.Schema, Schema)
		return 1
	}
	baseline := make(map[string]Entry, len(base.Benches))
	for _, e := range base.Benches {
		baseline[e.Name] = e
	}
	regressions := 0
	for _, e := range rep.Benches {
		b, ok := baseline[e.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench-diff: %-28s %8d allocs/op (new, not gated)\n", e.Name, e.AllocsPerOp)
			continue
		}
		status := "ok"
		if e.AllocsPerOp > b.AllocsPerOp+b.AllocsPerOp/1000 {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "bench-diff: %-28s %8d -> %8d allocs/op  %s\n",
			e.Name, b.AllocsPerOp, e.AllocsPerOp, status)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "bench-diff: %d allocation regression(s) against %s\n", regressions, path)
		return 1
	}
	fmt.Fprintf(os.Stderr, "bench-diff: no allocation regressions against %s\n", path)
	return 0
}

// discardResponseWriter is a reusable ResponseWriter for the server
// benchmarks: it keeps one header map and drops the body, so the
// measurement is the handler's own cost rather than recorder setup.
type discardResponseWriter struct {
	header http.Header
	code   int
}

func (w *discardResponseWriter) Header() http.Header { return w.header }
func (w *discardResponseWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}
func (w *discardResponseWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return len(p), nil
}

// randomPair mirrors the repository benchmark's correlated pair generator.
func randomPair(n int, seed uint64) ([]float64, []float64) {
	rng := mathx.NewRNG(seed)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Norm()
		y[i] = 0.7*x[i] + 0.3*rng.Norm()
	}
	return x, y
}
