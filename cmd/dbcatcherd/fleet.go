// Fleet mode: one daemon monitoring N simulated database units behind a
// single bounded round scheduler (fleet.Monitor), with every unit's
// verdict stream journaled into one multiplexed WAL and the aggregated
// /api/fleet endpoints serving region-wide totals and per-unit drill-down.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/fleet"
	"dbcatcher/internal/incident"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/replicate"
	"dbcatcher/internal/rootcause"
	"dbcatcher/internal/scrape"
	"dbcatcher/internal/server"
	"dbcatcher/internal/store"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// maxFleetUnits bounds -units: each unit carries rings, a judge, and a
// verdict buffer, and the simulator pre-generates its whole series.
const maxFleetUnits = 4096

type fleetConfig struct {
	addr        string
	units       int
	dbs         int
	profile     workload.Profile
	seed        uint64
	speedup     float64
	anomalies   float64
	horizon     int
	workers     int // per-unit correlation pool; 0 = auto
	fleetConc   int // scheduler pool; 0 = GOMAXPROCS
	history     int // verdict buffer per unit
	streaming   bool
	plan        workload.FaultPlan // template; seeded per unit
	dataDir     string
	fsyncPolicy string
	peer        string // HA counterpart base URL ("" = no epoch guard)

	incidents     bool // fleet incident aggregation stage
	incidentProx  int  // cross-unit clustering proximity (ticks)
	incidentClose int  // quiet ticks before an incident closes
	incidentHist  int  // closed clusters retained for paging

	// scrapeTargets switches the fleet's feed from the in-process simulation
	// to real HTTP scrape rounds: one target list per unit, each scraped by
	// that unit's own scraper (own breakers, retry budgets, stale markdown)
	// so a broken exporter degrades only its unit. scrape is the shared
	// tuning/format template; Targets and JitterSeed are filled per unit.
	scrapeTargets [][]string
	scrape        scrape.Config
}

func runFleet(cfg fleetConfig) {
	scrapeMode := cfg.scrapeTargets != nil
	log.Printf("fleet mode: %d units x %d databases, profile %v, %d ticks, scheduler pool %d",
		cfg.units, cfg.dbs, cfg.profile, cfg.horizon, fleet.Resolve(cfg.fleetConc))

	// The scheduler already fans out across units; nesting a correlation
	// pool inside each judge would only add scheduling overhead (the same
	// rule fleet.DetectUnits applies). Verdicts are identical either way.
	workers := cfg.workers
	if workers == 0 && fleet.Resolve(cfg.fleetConc) > 1 {
		workers = 1
	}

	collectors := make([]*cluster.Collector, cfg.units)
	onlines := make([]*monitor.Online, cfg.units)
	servers := make([]*server.Server, cfg.units)
	pushers := make([]fleet.Pusher, cfg.units)
	totalAnomalies := 0
	for i := 0; i < cfg.units; i++ {
		name := fmt.Sprintf("unit-%03d", i)
		seed := cfg.seed + uint64(i)*1009
		// In scrape mode the units' history lives behind their exporters;
		// there is nothing to simulate or inject here.
		if !scrapeMode {
			u, err := cluster.Simulate(cluster.Config{
				Name: name, Databases: cfg.dbs, Ticks: cfg.horizon,
				Profile: cfg.profile, Seed: seed,
			})
			if err != nil {
				log.Fatalf("dbcatcherd: unit %d: %v", i, err)
			}
			if cfg.anomalies > 0 {
				events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
					Ticks: cfg.horizon, Databases: cfg.dbs, TargetRatio: cfg.anomalies,
				}, mathx.NewRNG(seed+1))
				labels, err := anomaly.Inject(u, events, mathx.NewRNG(seed+2))
				if err != nil {
					log.Fatalf("dbcatcherd: unit %d: %v", i, err)
				}
				totalAnomalies += len(labels.Events)
			}
			plan := cfg.plan
			plan.Seed = seed + 3
			collectors[i], err = cluster.NewCollector(u.Series, plan)
			if err != nil {
				log.Fatalf("dbcatcherd: unit %d: %v", i, err)
			}
		}
		var err error
		onlines[i], err = monitor.NewOnline(detect.Config{
			Thresholds: window.DefaultThresholds(kpi.Count),
			Workers:    workers,
			Streaming:  cfg.streaming,
		}, kpi.Count, cfg.dbs)
		if err != nil {
			log.Fatalf("dbcatcherd: unit %d: %v", i, err)
		}
		servers[i] = server.New(onlines[i], name, cfg.history)
		pushers[i] = servers[i]
	}
	if cfg.anomalies > 0 {
		log.Printf("injected %d anomaly episodes across the fleet", totalAnomalies)
	}
	if !cfg.plan.IsZero() {
		log.Printf("collector faults enabled on every unit (per-unit seeds): drop-tick=%.3f drop-cell=%.3f partial-row=%.3f stale=%.3f silences=%d",
			cfg.plan.DropTickRate, cfg.plan.DropCellRate, cfg.plan.PartialRowRate, cfg.plan.StaleRate, len(cfg.plan.Silences))
	}

	// Incident aggregation (optional): dedup repeated per-tick verdicts into
	// incidents, cluster co-occurring anomalies across units, and attribute
	// each closed cluster to a probable origin. The aggregator is fed by the
	// feeder after every fleet round and served via /api/incidents.
	var agg *incident.Aggregator
	if cfg.incidents {
		agg = incident.New(incident.Config{
			ProximityTicks: cfg.incidentProx,
			CloseAfter:     cfg.incidentClose,
			MaxHistory:     cfg.incidentHist,
		})
	}

	// Durable state: one multiplexed WAL holds every unit's verdict stream
	// (unit-keyed records). Fleet mode journals judgments rather than full
	// judge state: after a restart detection replays deterministically from
	// tick 0 and the per-unit dedupe horizons suppress re-journaling (and
	// re-publishing) verdicts that are already durable.
	var st *store.Store
	var fp *store.FleetPersister
	var repl *replicate.Server
	if cfg.dataDir != "" {
		policy, err := store.ParsePolicy(cfg.fsyncPolicy)
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		var rec *store.Recovered
		st, rec, err = store.Open(cfg.dataDir, store.Options{Fsync: policy})
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		fp = store.NewFleetPersister(st, rec)
		recovered := 0
		for i := range servers {
			hist := rec.UnitVerdictHistory(i)
			recovered += len(hist)
			servers[i].RestoreHistory(hist)
			onlines[i].SetPersister(fp.Unit(i))
		}
		if agg != nil {
			// Rehydrate before any hook is attached: replayed transitions
			// must not be re-journaled or re-reported.
			if err := agg.Restore(rec.IncidentTransitions()); err != nil {
				log.Printf("recovery: incident journal rejected (%v); starting incident state fresh", err)
				agg = incident.New(incident.Config{
					ProximityTicks: cfg.incidentProx,
					CloseAfter:     cfg.incidentClose,
					MaxHistory:     cfg.incidentHist,
				})
			} else if h := agg.Horizon(); h > 0 {
				log.Printf("recovery: incident state rehydrated through round tick %d", h)
			}
		}
		m := st.Metrics()
		log.Printf("durable fleet state: dir=%s fsync=%s recovered %d verdicts across units (torn tail %v)",
			cfg.dataDir, policy, recovered, m.TornTail)

		// Primary role: adopt the next fencing epoch and serve the fleet's
		// multiplexed WAL to warm standbys at /replicate/. With a known
		// peer, refuse the boot if the peer already holds an equal-or-newer
		// epoch (a restarted, already-failed-over primary must not come
		// back as a second primary).
		next := rec.LatestEpoch() + 1
		if cfg.peer != "" {
			bootCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			err := replicate.VerifyBootEpoch(bootCtx, nil, cfg.peer, next)
			cancel()
			if err != nil {
				log.Fatalf("dbcatcherd: %v", err)
			}
		}
		if err := st.AdoptEpoch(next, 0); err != nil {
			log.Fatalf("dbcatcherd: adopt epoch: %v", err)
		}
		epoch, _ := st.Epoch()
		log.Printf("fleet primary role: serving replication at /replicate/ under epoch %d", epoch)
		repl = replicate.NewServer(st)
	}

	// Hooks go on after Restore so replay is silent. The persist buffer
	// collects one round's transitions for a single atomic WAL record; it is
	// only touched from the feeder goroutine (ObserveRound runs there).
	var incBuf []incident.Transition
	if agg != nil {
		if fp != nil {
			agg.SetPersist(func(t incident.Transition) { incBuf = append(incBuf, t) })
		}
		agg.SetOnClusterClose(func(rep *incident.ClusterReport) {
			log.Printf("INCIDENT closed: %s", rootcause.AttributeFleet(rep).Summary)
		})
	}

	mon, err := fleet.NewMonitor(pushers, cfg.fleetConc)
	if err != nil {
		log.Fatalf("dbcatcherd: %v", err)
	}
	var scrapers []*scrape.Scraper
	if scrapeMode {
		scrapers = make([]*scrape.Scraper, cfg.units)
		for i := range scrapers {
			sc := cfg.scrape
			sc.Targets = cfg.scrapeTargets[i]
			sc.JitterSeed = cfg.seed + uint64(i)*1009 + 4
			scrapers[i], err = scrape.New(sc)
			if err != nil {
				log.Fatalf("dbcatcherd: unit %d scraper: %v", i, err)
			}
		}
		if err := mon.SetScrapers(scrapers); err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		log.Printf("fleet scrape ingestion: %d units x %d targets, format %v, round deadline %v",
			cfg.units, cfg.dbs, cfg.scrape.Format, cfg.scrape.RoundTimeout)
	}
	api := server.NewFleet(servers)
	if repl != nil {
		api.SetReplication(repl.StatusBlock)
	}
	if scrapers != nil {
		api.SetScrape(func() interface{} {
			healths := make([]interface{}, len(scrapers))
			for i, s := range scrapers {
				healths[i] = s.Health()
			}
			return healths
		})
	}
	if fp != nil {
		api.SetPersistence(fp.Status)
	}
	if agg != nil {
		api.SetIncidents(agg)
	}
	if st != nil {
		api.SetRole(func() interface{} {
			e, fenced := st.Epoch()
			return map[string]interface{}{"role": "primary", "epoch": e, "fenced": fenced}
		})
	}
	var feedFault atomic.Value
	api.SetReady(func() error {
		if st != nil {
			if e, fenced := st.Epoch(); fenced {
				return fmt.Errorf("fenced: a newer primary holds an epoch above %d", e)
			}
		}
		if v := feedFault.Load(); v != nil {
			return v.(error)
		}
		return nil
	})

	// Epoch guard: keep the HA pair's epochs converged while serving (see
	// the single-unit daemon for the full rationale).
	guardCtx, guardCancel := context.WithCancel(context.Background())
	defer guardCancel()
	if st != nil && cfg.peer != "" {
		g := replicate.NewGuard(st, replicate.GuardConfig{
			Peer: cfg.peer,
			Seed: cfg.seed + 6,
			OnSelfFence: func(peerEpoch uint64) {
				log.Printf("epoch guard: peer %s serves epoch %d >= ours; self-fenced — durable writes stop, /readyz flips unready", cfg.peer, peerEpoch)
			},
		})
		go g.Run(guardCtx)
		log.Printf("epoch guard: watching peer %s", cfg.peer)
	}

	stop := make(chan struct{})
	done := make(chan struct{})

	// Feeder: one lock-step collection round per tick across the whole
	// fleet. Collector faults degrade individual units' verdicts; a
	// scheduler error (a pipeline bug, not a data fault) stops the feeder.
	go func() {
		defer close(done)
		interval := time.Duration(float64(5*time.Second) / cfg.speedup)
		samples := make([][][]float64, cfg.units)
		verdictCount, abnormalCount, degradedRounds := 0, 0, 0
		for tick := 0; tick < cfg.horizon; tick++ {
			select {
			case <-stop:
				return
			default:
			}
			var verdicts []*monitor.Verdict
			var err error
			if scrapeMode {
				// One batched round over the wire; exporter misbehaviour
				// degrades individual units' verdicts via their scrapers'
				// NaN gaps, never the round itself.
				var reports []scrape.RoundReport
				verdicts, reports, err = mon.ScrapeRound(context.Background())
				if err != nil {
					log.Printf("fleet scrape round: %v", err)
					feedFault.Store(fmt.Errorf("feed stopped: fleet scrape round: %v", err))
					return
				}
				for unit, rep := range reports {
					if rep.Late || rep.Missing > 0 {
						degradedRounds++
						// Sampled like the single-unit daemon: a dead exporter
						// must not flood the journal one line per unit-tick.
						if degradedRounds <= 10 || degradedRounds%100 == 0 {
							log.Printf("fleet scrape round %d unit %d: %d/%d targets arrived (breaker-skipped %d, late %v)",
								rep.Round, unit, rep.Arrived, cfg.dbs, rep.Skipped, rep.Late)
						}
					}
				}
			} else {
				for i, c := range collectors {
					sample, ok := c.Next()
					if !ok {
						log.Printf("unit %d collector exhausted at tick %d", i, tick)
						return
					}
					samples[i] = sample
				}
				verdicts, err = mon.Push(samples)
			}
			if err != nil {
				log.Printf("fleet round: %v", err)
				feedFault.Store(fmt.Errorf("feed stopped: fleet round: %v", err))
				return
			}
			var events []incident.Event
			for unit, v := range verdicts {
				if v == nil {
					continue
				}
				verdictCount++
				if v.Abnormal {
					abnormalCount++
					if agg != nil {
						events = append(events, incident.Event{
							Unit:  unit,
							DB:    v.AbnormalDB,
							KPIs:  deviatingKPIs(onlines[unit], v),
							Start: v.Start,
							End:   v.Start + v.Size,
						})
					}
				}
			}
			if agg != nil {
				// One ObserveRound per fleet round, journaled as one atomic
				// WAL record: a crash loses whole rounds off the tail, never
				// part of one. Rounds at or below the rehydrated horizon are
				// skipped inside the aggregator, so post-restart catch-up
				// re-emits (and re-journals) nothing.
				incBuf = incBuf[:0]
				agg.ObserveRound(tick, events)
				if fp != nil {
					fp.RecordIncidentRound(tick, incBuf)
				}
			}
			if tick > 0 && tick%1000 == 0 {
				log.Printf("fleet tick %d: %d verdicts so far, %d abnormal", tick, verdictCount, abnormalCount)
			}
			time.Sleep(interval)
		}
		log.Printf("fleet replay finished: %d rounds, %d verdicts, %d abnormal",
			mon.Ticks(), verdictCount, abnormalCount)
		if agg != nil {
			s := agg.Status()
			log.Printf("incident state: %d open / %d closed incidents in %d open / %d closed clusters (%d verdicts merged)",
				s.OpenIncidents, s.ClosedIncidents, s.OpenClusters, s.ClosedClusters, s.Merged)
		}
	}()

	handler := api.Handler()
	if repl != nil {
		outer := http.NewServeMux()
		outer.Handle("/replicate/", repl.Handler())
		outer.Handle("/", handler)
		handler = outer
	}
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
		sig := <-sigc
		log.Printf("received %v: draining and flushing fleet state", sig)
		close(stop)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			log.Printf("feeder did not drain in time")
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if fp != nil {
			if err := fp.Flush(); err != nil {
				log.Printf("flush: %v", err)
			}
		}
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("close: %v", err)
			}
		}
	}()

	endpoints := "/api/fleet/status, /api/fleet/verdicts?unit=N"
	if agg != nil {
		endpoints += ", /api/incidents"
	}
	log.Printf("fleet API listening on %s (%s)", cfg.addr, endpoints)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("dbcatcherd: %v", err)
	}
	<-shutdownDone
}

// deviatingKPIs attributes an abnormal verdict to the indicators that broke
// correlation, by re-judging the verdict's window with per-KPI explanation
// on the abnormal database. A zero set is legal — the window may already be
// evicted from the unit's ring by the time the verdict lands — and opens
// the incident unattributed rather than dropping it.
func deviatingKPIs(o *monitor.Online, v *monitor.Verdict) incident.KPISet {
	if v.AbnormalDB < 0 {
		return 0
	}
	u, err := o.Processor().Window(v.Start, v.Size)
	if err != nil {
		return 0
	}
	exps, err := detect.Explain(detect.NewProvider(u, nil, nil), detect.Config{
		Thresholds: o.Thresholds(),
	}, 0, v.Size)
	if err != nil || v.AbnormalDB >= len(exps) {
		return 0
	}
	var set incident.KPISet
	for _, k := range exps[v.AbnormalDB].Culprits() {
		set = set.With(int(k))
	}
	return set
}
