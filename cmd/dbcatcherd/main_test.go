package main

import (
	"reflect"
	"testing"

	"dbcatcher/internal/scrape"
	"dbcatcher/internal/workload"
)

func TestParseProfile(t *testing.T) {
	cases := map[string]workload.Profile{
		"tencent-irregular": workload.TencentIrregular,
		"Tencent-Periodic":  workload.TencentPeriodic,
		"sysbench-i":        workload.SysbenchI,
		"sysbench-ii":       workload.SysbenchII,
		"tpcc-i":            workload.TPCCI,
		"TPCC-II":           workload.TPCCII,
	}
	for in, want := range cases {
		got, err := parseProfile(in)
		if err != nil || got != want {
			t.Errorf("parseProfile(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseProfile("nope"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestSplitTargets(t *testing.T) {
	cases := map[string][]string{
		"":        nil,
		"  ":      nil,
		"a":       {"a"},
		"a,b":     {"a", "b"},
		" a , b,": {"a", "b"},
	}
	for in, want := range cases {
		if got := splitTargets(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitTargets(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseSilencesStrict(t *testing.T) {
	got, err := parseSilences(" 1:60:80 , 0:10:5 ")
	if err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	want := []workload.Silence{{DB: 1, Start: 60, Length: 80}, {DB: 0, Start: 10, Length: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseSilences = %+v, want %+v", got, want)
	}
	if got, err := parseSilences("  "); err != nil || got != nil {
		t.Fatalf("blank spec: %v, %v", got, err)
	}
	// The old fmt.Sscanf path accepted trailing garbage ("1:2:3junk" parsed
	// as 1:2:3) and sign prefixes; every field is now digits-only.
	for _, bad := range []string{
		"1:2:3junk",                // trailing garbage on the last field
		"+1:2:3",                   // sign prefix
		"1:-2:3",                   // negative field
		"1:2",                      // too few fields
		"1:2:3:4",                  // too many fields
		"1::3",                     // empty field
		"abc",                      // not a spec at all
		"1:2:3,",                   // trailing comma leaves an empty spec
		"1: 2:3",                   // interior whitespace inside a field
		"1:2:99999999999999999999", // out of int range
	} {
		if _, err := parseSilences(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestApplyScrapeFaults(t *testing.T) {
	exp := scrape.NewExporter(scrape.NewFeed(2, 3))
	if err := applyScrapeFaults(exp, "", 3); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if err := applyScrapeFaults(exp, "0:hang, 1:5xx:10 ,2:flap", 3); err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	for _, bad := range []string{
		"0",            // missing mode
		"0:hang:1:2",   // too many fields
		"x:hang",       // non-numeric db
		"3:hang",       // db out of range
		"0:explode",    // unknown mode
		"0:hang:-1",    // negative count
		"0:hang:zwölf", // non-numeric count
	} {
		if err := applyScrapeFaults(exp, bad, 3); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
