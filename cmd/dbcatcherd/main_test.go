package main

import (
	"testing"

	"dbcatcher/internal/workload"
)

func TestParseProfile(t *testing.T) {
	cases := map[string]workload.Profile{
		"tencent-irregular": workload.TencentIrregular,
		"Tencent-Periodic":  workload.TencentPeriodic,
		"sysbench-i":        workload.SysbenchI,
		"sysbench-ii":       workload.SysbenchII,
		"tpcc-i":            workload.TPCCI,
		"TPCC-II":           workload.TPCCII,
	}
	for in, want := range cases {
		got, err := parseProfile(in)
		if err != nil || got != want {
			t.Errorf("parseProfile(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseProfile("nope"); err == nil {
		t.Error("unknown profile should error")
	}
}
