package main

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/scrape"
	"dbcatcher/internal/tracefile"
	"dbcatcher/internal/workload"
)

func TestParseProfile(t *testing.T) {
	cases := map[string]workload.Profile{
		"tencent-irregular": workload.TencentIrregular,
		"Tencent-Periodic":  workload.TencentPeriodic,
		"sysbench-i":        workload.SysbenchI,
		"sysbench-ii":       workload.SysbenchII,
		"tpcc-i":            workload.TPCCI,
		"TPCC-II":           workload.TPCCII,
	}
	for in, want := range cases {
		got, err := parseProfile(in)
		if err != nil || got != want {
			t.Errorf("parseProfile(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseProfile("nope"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestSplitTargets(t *testing.T) {
	cases := map[string][]string{
		"":        nil,
		"  ":      nil,
		"a":       {"a"},
		"a,b":     {"a", "b"},
		" a , b,": {"a", "b"},
	}
	for in, want := range cases {
		if got := splitTargets(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitTargets(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseSilencesStrict(t *testing.T) {
	got, err := parseSilences(" 1:60:80 , 0:10:5 ")
	if err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	want := []workload.Silence{{DB: 1, Start: 60, Length: 80}, {DB: 0, Start: 10, Length: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseSilences = %+v, want %+v", got, want)
	}
	if got, err := parseSilences("  "); err != nil || got != nil {
		t.Fatalf("blank spec: %v, %v", got, err)
	}
	// The old fmt.Sscanf path accepted trailing garbage ("1:2:3junk" parsed
	// as 1:2:3) and sign prefixes; every field is now digits-only.
	for _, bad := range []string{
		"1:2:3junk",                // trailing garbage on the last field
		"+1:2:3",                   // sign prefix
		"1:-2:3",                   // negative field
		"1:2",                      // too few fields
		"1:2:3:4",                  // too many fields
		"1::3",                     // empty field
		"abc",                      // not a spec at all
		"1:2:3,",                   // trailing comma leaves an empty spec
		"1: 2:3",                   // interior whitespace inside a field
		"1:2:99999999999999999999", // out of int range
	} {
		if _, err := parseSilences(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestApplyScrapeFaults(t *testing.T) {
	exp := scrape.NewExporter(scrape.NewFeed(2, 3))
	if err := applyScrapeFaults(exp, "", 3); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if err := applyScrapeFaults(exp, "0:hang, 1:5xx:10 ,2:flap", 3); err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	for _, bad := range []string{
		"0",            // missing mode
		"0:hang:1:2",   // too many fields
		"x:hang",       // non-numeric db
		"3:hang",       // db out of range
		"0:explode",    // unknown mode
		"0:hang:-1",    // negative count
		"0:hang:zwölf", // non-numeric count
	} {
		if err := applyScrapeFaults(exp, bad, 3); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// A recorded trace must replay through the collector bit-identically to the
// simulation it captured — the -trace path's pipeline is then provably the
// same stream the live run saw.
func TestLoadTraceRoundTrip(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "rec", Databases: 3, Ticks: 40, Seed: 7, Profile: workload.TencentIrregular,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := tracefile.WriteFile(path, u.Series); err != nil {
		t.Fatal(err)
	}
	series, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if series.Databases != 3 || series.Len() != 40 {
		t.Fatalf("trace shape %dx%d", series.Databases, series.Len())
	}
	ref, err := cluster.NewCollector(u.Series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.NewCollector(series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; ; tick++ {
		want, okW := ref.Next()
		have, okH := got.Next()
		if okW != okH {
			t.Fatalf("tick %d: streams end at different ticks", tick)
		}
		if !okW {
			break
		}
		for k := range want {
			for d := range want[k] {
				if math.Float64bits(want[k][d]) != math.Float64bits(have[k][d]) {
					t.Fatalf("tick %d cell [%d][%d]: %v != %v", tick, k, d, have[k][d], want[k][d])
				}
			}
		}
	}
}

func TestLoadTraceRejectsWrongShape(t *testing.T) {
	if _, err := loadTrace(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("loadTrace accepted a missing file")
	}
}

func TestParseFleetTargets(t *testing.T) {
	got, err := parseFleetTargets("http://a:1;http://b:2/db/0/kpis,http://b:2/db/1/kpis,http://b:2/db/2/kpis", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 3 || len(got[1]) != 3 {
		t.Fatalf("groups = %v", got)
	}
	if got[0][2] != "http://a:1/db/2/kpis" {
		t.Fatalf("base URL expansion = %q", got[0][2])
	}
	if got[1][0] != "http://b:2/db/0/kpis" {
		t.Fatalf("explicit list = %q", got[1][0])
	}
	for _, bad := range []string{
		"",               // no groups
		"http://a:1",     // 1 group for 2 units
		"http://a:1;;",   // empty group
		"http://a:1;x,y", // 2 targets, want 1 or 3
		"http://a:1;x;y", // 3 groups for 2 units
	} {
		if _, err := parseFleetTargets(bad, 2, 3); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}
