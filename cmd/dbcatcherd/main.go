// Command dbcatcherd is the online monitoring daemon: it simulates a
// cloud-database unit (with optional injected anomalies), streams its KPI
// samples through the DBCatcher detector, and serves status, verdicts,
// thresholds, and DBA feedback over HTTP.
//
// With -data-dir the detector's state is durable: verdicts, feedback
// records, and threshold swaps are written to a CRC-checked WAL and the
// judge's full state to atomic snapshots, so a restart resumes detection
// one past the last persisted tick instead of resetting to factory
// thresholds. SIGTERM/SIGINT drain in-flight API responses and flush a
// final snapshot before exit.
//
// With -scrape-addr the collection path is a real network pipeline: every
// database is exported as an HTTP scrape target (/db/N/kpis) and ingestion
// runs exporter → deadline-driven scraper (retries, backoff, per-target
// circuit breakers) → degraded monitor. -scrape-fault injects exporter
// misbehaviour (hangs, 5xx, truncated JSON, drops) to watch the pipeline
// degrade and recover; /api/status reports per-target scrape health. A
// second process can run -scrape-addr :9101 -export-only while this one
// scrapes it via -scrape-targets.
//
// With -relearn a supervised background loop adapts the detection
// thresholds to drift: a Page-Hinkley test on the correlation distance and
// accumulated DBA corrections trigger a deadline-bounded threshold search,
// candidates are validated on a held-out split of the judgment records,
// shadow-judged against the live thresholds for -relearn-shadow-ticks
// ticks, and promoted only if the verdict-flip rate stays within budget —
// otherwise they are rolled back and the live thresholds stand untouched.
//
// Usage:
//
//	dbcatcherd -addr :8080 -profile tencent-irregular -speedup 100 \
//	    -data-dir /var/lib/dbcatcher -fsync-policy interval
//
// Then:
//
//	curl localhost:8080/api/status
//	curl localhost:8080/api/verdicts?limit=10
//	curl localhost:8080/api/thresholds
//	curl -X POST localhost:8080/api/feedback -d '{"start":0,"size":20,"predicted":false,"actual":false}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/relearn"
	"dbcatcher/internal/replicate"
	"dbcatcher/internal/scrape"
	"dbcatcher/internal/server"
	"dbcatcher/internal/store"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/tracefile"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		profile   = flag.String("profile", "tencent-irregular", "workload profile: tencent-irregular, tencent-periodic, sysbench-i, sysbench-ii, tpcc-i, tpcc-ii")
		dbs       = flag.Int("dbs", 5, "databases in the unit")
		seed      = flag.Uint64("seed", 1, "random seed")
		speedup   = flag.Float64("speedup", 100, "simulation speed multiplier (1 = real-time 5 s ticks)")
		anomalies = flag.Float64("anomaly-ratio", 0.03, "fraction of abnormal ticks injected into the stream")
		horizon   = flag.Int("horizon", 17280, "ticks to pre-simulate (default 24 h)")
		foTick    = flag.Int("failover-tick", 0, "tick at which a failover promotes a replica (0 = none)")
		foTarget  = flag.Int("failover-target", 1, "replica promoted at -failover-tick")
		conc      = flag.Int("concurrency", 0, "correlation worker pool per window (0 = GOMAXPROCS, 1 = serial; verdicts identical)")
		streaming = flag.Bool("streaming-kcd", false, "incremental streaming KCD: O(1)-per-tick rolling correlation updates instead of per-round window recomputes (fast-math opt-in, ~1e-9 score bound; gap windows stay exact)")

		faultDropTick = flag.Float64("fault-drop-tick", 0, "probability a whole collection tick is lost")
		faultDropCell = flag.Float64("fault-drop-cell", 0, "per-cell probability a (KPI, database) point is lost")
		faultPartial  = flag.Float64("fault-partial-row", 0, "per-KPI probability a row arrives truncated")
		faultStale    = flag.Float64("fault-stale", 0, "probability a tick is re-delivered stale")
		faultSilences = flag.String("fault-silence", "", "scheduled database outages as db:start:length[,db:start:length...]")

		dataDir     = flag.String("data-dir", "", "durable state directory (empty = in-memory only)")
		fsyncPolicy = flag.String("fsync-policy", "interval", "WAL durability: always, interval, never")
		snapEvery   = flag.Int("snapshot-every", 1, "verdicts between state snapshots (threshold swaps always snapshot)")

		follow       = flag.String("follow", "", "warm-standby mode: tail this primary's base URL into -data-dir and serve probes only; detection starts after promotion")
		followPoll   = flag.Duration("follow-poll", 500*time.Millisecond, "follower tail poll interval")
		promoteAfter = flag.Duration("promote-after", 0, "auto-promote after this long without primary contact (0 = manual POST /api/promote only)")
		staleBudget  = flag.Duration("staleness-budget", 5*time.Second, "replication lag budget before a follower's /readyz reports unready")
		peer         = flag.String("peer", "", "HA counterpart base URL: a booting primary refuses to serve if the peer already holds an equal-or-newer fencing epoch, and while serving it runs the epoch guard (re-fences a stale peer, self-fences on seeing a newer one); a promoted standby defaults this to the old primary's URL")

		scrapeAddr    = flag.String("scrape-addr", "", "serve the unit's per-DB KPI exporter on this address and ingest over HTTP scrape instead of the in-process collector")
		scrapeTargets = flag.String("scrape-targets", "", "comma-separated external scrape target URLs, one per database in order (overrides self-scrape; pair with a -scrape-addr -export-only process)")
		exportOnly    = flag.Bool("export-only", false, "with -scrape-addr: only publish and export KPIs, skip detection (a second dbcatcherd scrapes this one via -scrape-targets)")

		scrapeRoundTO  = flag.Duration("scrape-round-timeout", 2*time.Second, "collection deadline per tick; late targets become NaN gaps")
		scrapeTryTO    = flag.Duration("scrape-try-timeout", 0, "per-attempt HTTP timeout (0 = round timeout / 4)")
		scrapeAttempts = flag.Int("scrape-attempts", 3, "attempts per target per round (first try plus retries)")
		scrapeBrkFails = flag.Int("scrape-breaker-failures", 3, "consecutive failed rounds before a target's circuit breaker opens")
		scrapeBrkOpen  = flag.Int("scrape-breaker-open", 5, "rounds an open breaker skips before its half-open probe")
		scrapeStale    = flag.Int("scrape-stale-rounds", 3, "rounds a target may re-serve the same tick before it is marked down")
		scrapeConc     = flag.Int("scrape-concurrency", 0, "scrape fan-out bound (0 = all targets, capped at 16)")
		scrapeFaults   = flag.String("scrape-fault", "", "exporter fault script: db:mode[:count],... (modes: hang, 5xx, truncate, garbage, drop, flap, stale, format-flip)")
		scrapeFormat   = flag.String("scrape-format", "json", "scrape wire format negotiated with every target: json (bespoke payload) or prom (Prometheus text exposition)")

		trace    = flag.String("trace", "", "replay a recorded KPI trace (CSV, see internal/tracefile) through the full pipeline instead of simulating; the trace fixes -dbs and -horizon")
		traceRec = flag.String("trace-record", "", "write the simulated (and anomaly-injected) KPI stream to this CSV trace on startup; replay it later with -trace")

		units           = flag.Int("units", 1, "database units to monitor; >1 runs the sharded fleet scheduler with the aggregated /api/fleet endpoints")
		fleetScrapeSpec = flag.String("fleet-scrape-targets", "", "fleet scrape ingestion: unit target groups separated by ';', each group one exporter base URL (expanded to /db/N/kpis) or a comma-separated list of exactly -dbs URLs; replaces the simulated feed (requires -units > 1)")
		fleetConc       = flag.Int("fleet-concurrency", 0, "fleet round scheduler worker pool (0 = GOMAXPROCS); per-unit verdicts are identical at any setting")
		fleetHist       = flag.Int("fleet-history", 128, "verdict history buffer per fleet unit")

		incidentsOn   = flag.Bool("incidents", false, "fleet incident aggregation: dedup repeated verdicts into incidents, cluster co-occurring anomalies across units, serve /api/incidents (requires -units > 1)")
		incidentProx  = flag.Int("incident-proximity", 32, "ticks within which anomalies on different units join one fleet incident cluster")
		incidentClose = flag.Int("incident-close-after", 64, "quiet ticks after an incident's last sighting before it closes")
		incidentHist  = flag.Int("incident-history", 256, "closed incident clusters retained for /api/incidents paging")

		relearnOn     = flag.Bool("relearn", false, "enable the drift-triggered adaptive threshold relearning supervisor")
		relearnDL     = flag.Duration("relearn-deadline", 30*time.Second, "wall-clock budget for one background threshold search")
		relearnCool   = flag.Duration("relearn-cooldown", 2*time.Minute, "minimum gap between retrain attempts (converted to ticks at the replay rate)")
		relearnShadow = flag.Int("relearn-shadow-ticks", 100, "live ticks a validated candidate is shadow-judged before promotion")
	)
	flag.Parse()

	p, err := parseProfile(*profile)
	if err != nil {
		log.Fatalf("dbcatcherd: %v", err)
	}
	format, err := scrape.ParseFormat(*scrapeFormat)
	if err != nil {
		log.Fatalf("dbcatcherd: %v", err)
	}

	// peerURL is the HA counterpart this node compares fencing epochs
	// against: the -peer flag, or — after a takeover — the primary we just
	// tailed, so the freshly promoted node guards against its old primary
	// coming back without any extra configuration.
	peerURL := strings.TrimRight(*peer, "/")

	// Warm-standby phase: tail the primary until promotion (manual or
	// missed-heartbeat), then fall through into the normal startup below —
	// the promoted mirror recovers exactly like a restarted primary and
	// the feed resumes from the last durable tick.
	if *follow != "" {
		if *dataDir == "" {
			log.Fatalf("dbcatcherd: -follow requires -data-dir (the WAL mirror lives there)")
		}
		if *exportOnly || *scrapeTargets != "" {
			log.Fatalf("dbcatcherd: -follow cannot be combined with -export-only or -scrape-targets")
		}
		policy, err := store.ParsePolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		promoted := runFollower(followerConfig{
			primary:      strings.TrimRight(*follow, "/"),
			dir:          *dataDir,
			addr:         *addr,
			poll:         *followPoll,
			budget:       *staleBudget,
			promoteAfter: *promoteAfter,
			seed:         *seed,
		}, store.Options{Fsync: policy})
		if !promoted {
			return // clean standby shutdown
		}
		if peerURL == "" {
			peerURL = strings.TrimRight(*follow, "/")
		}
		log.Printf("takeover: restarting the monitoring stack from the promoted mirror")
	}

	// Fleet mode: N simulated units behind one bounded round scheduler and
	// the aggregated /api/fleet surface. The single-unit integrations that
	// assume exactly one judge (network scrape wiring, relearning,
	// failover scheduling) are rejected rather than silently applied to
	// unit 0 only; collector faults, persistence, and streaming KCD all
	// compose with the fleet.
	if *units > 1 {
		if *units > maxFleetUnits {
			log.Fatalf("dbcatcherd: -units %d exceeds the %d-unit bound", *units, maxFleetUnits)
		}
		for flagName, set := range map[string]bool{
			"-scrape-addr":    *scrapeAddr != "",
			"-scrape-targets": *scrapeTargets != "",
			"-scrape-fault":   *scrapeFaults != "",
			"-export-only":    *exportOnly,
			"-relearn":        *relearnOn,
			"-failover-tick":  *foTick > 0,
			"-trace":          *trace != "",
			"-trace-record":   *traceRec != "",
		} {
			if set {
				log.Fatalf("dbcatcherd: %s is single-unit only; it cannot be combined with -units > 1", flagName)
			}
		}
		plan := workload.FaultPlan{
			DropTickRate:   *faultDropTick,
			DropCellRate:   *faultDropCell,
			PartialRowRate: *faultPartial,
			StaleRate:      *faultStale,
		}
		plan.Silences, err = parseSilences(*faultSilences)
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		var fleetTargets [][]string
		if *fleetScrapeSpec != "" {
			// Collector faults shape the simulated feed; in fleet scrape mode
			// the data arrives over the wire, so a fault plan would silently
			// do nothing. Script exporter faults on the exporting daemons.
			if !plan.IsZero() {
				log.Fatalf("dbcatcherd: collector fault flags cannot be combined with -fleet-scrape-targets (inject faults on the exporters instead)")
			}
			fleetTargets, err = parseFleetTargets(*fleetScrapeSpec, *units, *dbs)
			if err != nil {
				log.Fatalf("dbcatcherd: %v", err)
			}
		}
		runFleet(fleetConfig{
			addr:          *addr,
			units:         *units,
			dbs:           *dbs,
			profile:       p,
			seed:          *seed,
			speedup:       *speedup,
			anomalies:     *anomalies,
			horizon:       *horizon,
			workers:       *conc,
			fleetConc:     *fleetConc,
			history:       *fleetHist,
			streaming:     *streaming,
			plan:          plan,
			dataDir:       *dataDir,
			fsyncPolicy:   *fsyncPolicy,
			peer:          peerURL,
			incidents:     *incidentsOn,
			incidentProx:  *incidentProx,
			incidentClose: *incidentClose,
			incidentHist:  *incidentHist,
			scrapeTargets: fleetTargets,
			scrape: scrape.Config{
				KPIs:              kpi.Count,
				Format:            format,
				RoundTimeout:      *scrapeRoundTO,
				TryTimeout:        *scrapeTryTO,
				MaxAttempts:       *scrapeAttempts,
				BreakerFailures:   *scrapeBrkFails,
				BreakerOpenRounds: *scrapeBrkOpen,
				StaleRounds:       *scrapeStale,
				Concurrency:       *scrapeConc,
			},
		})
		return
	}
	if *units < 1 {
		log.Fatalf("dbcatcherd: -units must be at least 1")
	}
	if *fleetScrapeSpec != "" {
		log.Fatalf("dbcatcherd: -fleet-scrape-targets requires -units > 1 (use -scrape-targets for one unit)")
	}
	// Incident aggregation clusters anomalies *across* units; with one unit
	// there is nothing to cluster, so reject it like fleet mode rejects
	// single-unit-only flags instead of silently ignoring it.
	if *incidentsOn {
		log.Fatalf("dbcatcherd: -incidents requires -units > 1 (fleet mode)")
	}

	// Data source: a recorded trace replayed through the full pipeline, or
	// the live simulation (optionally recorded for later replay). Either way
	// the collector, fault plan, scrape layer, and judge downstream are
	// identical — a trace is just a unit whose history happened elsewhere.
	var series *timeseries.UnitSeries
	var labels *anomaly.Labels
	if *trace != "" {
		if *traceRec != "" {
			log.Fatalf("dbcatcherd: -trace-record cannot be combined with -trace (recording a replay is a file copy)")
		}
		if *foTick > 0 {
			log.Fatalf("dbcatcherd: -failover-tick rewrites the simulation; it cannot be combined with -trace")
		}
		series, err = loadTrace(*trace)
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		*dbs = series.Databases
		*horizon = series.Len()
		log.Printf("replaying trace %s: %d databases, %d ticks (anomaly injection off: the trace is the ground truth)",
			*trace, *dbs, *horizon)
	} else {
		log.Printf("simulating unit: %d databases, profile %v, %d ticks", *dbs, p, *horizon)
		simCfg := cluster.Config{
			Name: "live", Databases: *dbs, Ticks: *horizon, Profile: p, Seed: *seed,
		}
		if *foTick > 0 {
			simCfg.Failover = &cluster.Failover{Tick: *foTick, NewPrimary: *foTarget}
			log.Printf("failover scheduled: db%d promoted at tick %d", *foTarget, *foTick)
		}
		u, err := cluster.Simulate(simCfg)
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		if *anomalies > 0 {
			events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
				Ticks: *horizon, Databases: *dbs, TargetRatio: *anomalies,
			}, mathx.NewRNG(*seed+1))
			labels, err = anomaly.Inject(u, events, mathx.NewRNG(*seed+2))
			if err != nil {
				log.Fatalf("dbcatcherd: %v", err)
			}
			log.Printf("injected %d anomaly episodes (%.1f%% of ticks)",
				len(labels.Events), 100*labels.Ratio())
		}
		series = u.Series
		if *traceRec != "" {
			if err := tracefile.WriteFile(*traceRec, series); err != nil {
				log.Fatalf("dbcatcherd: recording trace: %v", err)
			}
			log.Printf("recorded the injected stream to %s (replay with -trace)", *traceRec)
		}
	}

	plan := workload.FaultPlan{
		Seed:           *seed + 3,
		DropTickRate:   *faultDropTick,
		DropCellRate:   *faultDropCell,
		PartialRowRate: *faultPartial,
		StaleRate:      *faultStale,
	}
	plan.Silences, err = parseSilences(*faultSilences)
	if err != nil {
		log.Fatalf("dbcatcherd: %v", err)
	}
	collector, err := cluster.NewCollector(series, plan)
	if err != nil {
		log.Fatalf("dbcatcherd: %v", err)
	}
	if !plan.IsZero() {
		log.Printf("collector faults enabled: drop-tick=%.3f drop-cell=%.3f partial-row=%.3f stale=%.3f silences=%d",
			plan.DropTickRate, plan.DropCellRate, plan.PartialRowRate, plan.StaleRate, len(plan.Silences))
	}

	online, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Workers:    *conc,
		Streaming:  *streaming,
	}, kpi.Count, *dbs)
	if err != nil {
		log.Fatalf("dbcatcherd: %v", err)
	}
	srv := server.New(online, "live", 512)

	// Network scrape layer (optional): with -scrape-addr every database in
	// the unit becomes a real HTTP scrape target served by this process,
	// and ingestion runs the full network path (exporter → scraper →
	// degraded monitor) instead of the in-process function call. With
	// -scrape-targets the scraper collects from external exporters instead
	// (e.g. a second dbcatcherd running -export-only).
	if *exportOnly && *scrapeAddr == "" {
		log.Fatalf("dbcatcherd: -export-only requires -scrape-addr")
	}
	var (
		feed    *scrape.Feed
		scraper *scrape.Scraper
		expSrv  *http.Server
	)
	targets := splitTargets(*scrapeTargets)
	if targets != nil && len(targets) != *dbs {
		log.Fatalf("dbcatcherd: -scrape-targets lists %d targets for %d databases", len(targets), *dbs)
	}
	if *scrapeAddr != "" {
		feed = scrape.NewFeed(kpi.Count, *dbs)
		exp := scrape.NewExporter(feed)
		if err := applyScrapeFaults(exp, *scrapeFaults, *dbs); err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		ln, err := net.Listen("tcp", *scrapeAddr)
		if err != nil {
			log.Fatalf("dbcatcherd: scrape listener: %v", err)
		}
		expSrv = &http.Server{
			Handler: exp.Handler(),
			// No WriteTimeout: hang faults park responses on purpose; the
			// scraper's per-try deadline is the recovery mechanism.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       15 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := expSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Fatalf("dbcatcherd: exporter: %v", err)
			}
		}()
		port := ln.Addr().(*net.TCPAddr).Port
		if targets == nil {
			targets = scrape.SelfTargets(fmt.Sprintf("http://127.0.0.1:%d", port), *dbs)
		}
		log.Printf("exporting %d scrape targets on %v (/db/N/kpis)", *dbs, ln.Addr())
	}
	if !*exportOnly && targets != nil {
		scraper, err = scrape.New(scrape.Config{
			Targets:           targets,
			KPIs:              kpi.Count,
			Format:            format,
			RoundTimeout:      *scrapeRoundTO,
			TryTimeout:        *scrapeTryTO,
			MaxAttempts:       *scrapeAttempts,
			BreakerFailures:   *scrapeBrkFails,
			BreakerOpenRounds: *scrapeBrkOpen,
			StaleRounds:       *scrapeStale,
			Concurrency:       *scrapeConc,
			JitterSeed:        *seed + 4,
		})
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		srv.SetScrape(func() interface{} { return scraper.Health() })
		log.Printf("scrape ingestion: %d targets, round deadline %v, breaker %d fails / %d open rounds",
			len(targets), *scrapeRoundTO, *scrapeBrkFails, *scrapeBrkOpen)
	}

	// Durable state: recover whatever a previous run persisted, attach
	// the WAL/snapshot bridge, and resume detection one past the last
	// persisted tick. Without -data-dir everything stays in memory and
	// the detection path is unchanged.
	resume := 0
	fbCap := 512
	var fb *feedback.Store
	var pers *store.Persister
	var st *store.Store
	var repl *replicate.Server
	if *dataDir != "" {
		policy, err := store.ParsePolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		var rec *store.Recovered
		st, rec, err = store.Open(*dataDir, store.Options{Fsync: policy})
		if err != nil {
			log.Fatalf("dbcatcherd: %v", err)
		}
		if ms := rec.MonitorState(); ms != nil {
			if err := online.RestoreState(ms); err != nil {
				log.Printf("recovery: cannot resume detector state (%v); starting fresh", err)
			} else {
				resume = rec.ResumeTick()
			}
		} else if th := rec.LatestThresholds(); th != nil {
			if err := online.SetThresholds(*th); err != nil {
				log.Printf("recovery: persisted thresholds rejected: %v", err)
			}
		}
		fb = feedback.NewStoreFrom(fbCap, rec.FeedbackRecords())
		srv.RestoreHistory(rec.VerdictHistory())
		pers = store.NewPersister(st, rec, fb, *snapEvery)
		online.SetPersister(pers)
		fb.SetJournal(pers)
		srv.SetPersistence(pers.Status)
		m := st.Metrics()
		log.Printf("durable state: dir=%s fsync=%s recovered %d records (resume tick %d, torn tail %v)",
			*dataDir, policy, m.RecoveredRecords, resume, m.TornTail)

		// Primary role: adopt the next fencing epoch durably (a promoted
		// standby's epoch is already in the recovered log, so a takeover
		// continues the sequence) and serve the WAL to warm standbys. With
		// a known peer, first prove our log is the newest history: a
		// crashed-and-failed-over primary restarted by its supervisor
		// would otherwise recompute LatestEpoch()+1 from its own stale log
		// and come back as a second primary at the new primary's epoch.
		next := rec.LatestEpoch() + 1
		if peerURL != "" {
			bootCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			err := replicate.VerifyBootEpoch(bootCtx, nil, peerURL, next)
			cancel()
			if err != nil {
				log.Fatalf("dbcatcherd: %v", err)
			}
		}
		if err := st.AdoptEpoch(next, rec.DurableTick()); err != nil {
			log.Fatalf("dbcatcherd: adopt epoch: %v", err)
		}
		epoch, _ := st.Epoch()
		log.Printf("primary role: serving replication at /replicate/ under epoch %d", epoch)
		repl = replicate.NewServer(st)
		srv.SetReplication(repl.StatusBlock)
		srv.SetRole(func() interface{} {
			e, fenced := st.Epoch()
			return map[string]interface{}{"role": "primary", "epoch": e, "fenced": fenced}
		})
	} else {
		fb = feedback.NewStore(fbCap)
	}
	srv.SetFeedback(fb)

	// Epoch guard: while serving as primary with a known peer, keep the
	// pair's epochs converged — re-fence a peer stuck at an older epoch
	// (the partition-survivor zombie) and self-fence on observing the peer
	// at an equal-or-newer one (our history is the stale fork). This is
	// what makes the one-shot fence at promotion time safe to miss.
	guardCtx, guardCancel := context.WithCancel(context.Background())
	defer guardCancel()
	if st != nil && peerURL != "" {
		g := replicate.NewGuard(st, replicate.GuardConfig{
			Peer: peerURL,
			Seed: *seed + 6,
			OnSelfFence: func(peerEpoch uint64) {
				log.Printf("epoch guard: peer %s serves epoch %d >= ours; self-fenced — durable writes stop, /readyz flips unready", peerURL, peerEpoch)
				srv.Invalidate()
			},
		})
		go g.Run(guardCtx)
		log.Printf("epoch guard: watching peer %s", peerURL)
	}

	// Readiness: the node should receive traffic once its feed is live and
	// has not terminally failed; a finished replay still serves history. A
	// fenced store means this node lost an epoch race — a load balancer
	// must stop sending it traffic even though the process is healthy.
	var feedFault atomic.Value
	srv.SetReady(func() error {
		if st != nil {
			if e, fenced := st.Epoch(); fenced {
				return fmt.Errorf("fenced: a newer primary holds an epoch above %d", e)
			}
		}
		if v := feedFault.Load(); v != nil {
			return v.(error)
		}
		return nil
	})

	// Adaptive relearning (optional): a supervised background loop watches
	// the correlation-distance drift signal and accumulated DBA corrections,
	// re-runs the threshold search in an isolated deadline-bounded
	// goroutine, validates candidates on a held-out split, shadow-judges
	// survivors on live traffic, and only then swaps thresholds atomically.
	// Every failure mode (panic, deadline, regression, flip-budget breach)
	// leaves the live thresholds untouched.
	var sup *relearn.Supervisor
	if *relearnOn && !*exportOnly {
		// The cooldown flag is wall-clock; the supervisor counts collection
		// ticks, which arrive every 5s/speedup.
		cooldownTicks := int(float64(*relearnCool) * *speedup / float64(5*time.Second))
		if cooldownTicks < 1 {
			cooldownTicks = 1
		}
		sup = relearn.NewSupervisor(relearn.Config{
			Q:             kpi.Count,
			Deadline:      *relearnDL,
			CooldownTicks: cooldownTicks,
			ShadowTicks:   *relearnShadow,
			Seed:          *seed + 5,
		}, online, fb, relearn.SeriesSource{U: series})
		if pers != nil {
			sup.SetRecorder(pers)
		}
		srv.SetRelearn(func() interface{} { return sup.Status() }, sup.TriggerManual)
		log.Printf("relearn supervisor: deadline %v, cooldown %d ticks, shadow %d ticks",
			*relearnDL, cooldownTicks, *relearnShadow)
	}

	if resume >= *horizon {
		log.Printf("recovered state already covers the %d-tick horizon; serving history only", *horizon)
	}

	// Fast-forward the deterministic collector to the resume point so
	// the re-fed stream is tick-aligned with the persisted state.
	for i := 0; i < resume; i++ {
		if _, ok := collector.Next(); !ok {
			break
		}
	}
	if *foTick > 0 && *foTick <= resume {
		if err := online.SetPrimary(*foTarget); err != nil {
			log.Printf("failover: %v", err)
		}
	}

	stop := make(chan struct{})
	done := make(chan struct{})

	// Feeder: replay the simulated unit's lossy collection stream at the
	// configured speed. The degraded-mode monitor accepts nil and partial
	// samples, so faults degrade verdicts instead of stopping the feeder.
	go func() {
		defer close(done)
		interval := time.Duration(float64(5*time.Second) / *speedup)
		degradedRounds := 0
		for tick := resume; tick < *horizon; tick++ {
			select {
			case <-stop:
				return
			default:
			}
			if *foTick > 0 && tick == *foTick {
				// The detector follows the promotion so R-R KPIs are
				// judged against the correct peer set.
				if err := online.SetPrimary(*foTarget); err != nil {
					log.Printf("failover: %v", err)
				} else {
					log.Printf("failover: detector now treats db%d as primary", *foTarget)
				}
			}
			var sample [][]float64
			if feed != nil || scraper == nil {
				// The local simulation is the data source (everything but
				// pure external-target mode).
				var ok bool
				sample, ok = collector.Next()
				if !ok {
					break
				}
			}
			if feed != nil {
				if err := feed.Publish(tick, sample); err != nil {
					log.Printf("publish: %v", err)
					feedFault.Store(fmt.Errorf("feed stopped: publish: %v", err))
					return
				}
			}
			if *exportOnly {
				time.Sleep(interval)
				continue
			}
			if scraper != nil {
				scraped, rep, err := scraper.Round(context.Background())
				if err != nil {
					log.Printf("scrape round: %v", err)
					feedFault.Store(fmt.Errorf("feed stopped: scrape round: %v", err))
					return
				}
				if rep.Late || rep.Missing > 0 {
					degradedRounds++
					// Log the first few and then sampled repeats; a dead
					// target must not flood the journal one line per tick.
					if degradedRounds <= 10 || degradedRounds%100 == 0 {
						log.Printf("scrape round %d: %d/%d targets arrived (breaker-skipped %d, late %v)",
							rep.Round, rep.Arrived, scraper.Targets(), rep.Skipped, rep.Late)
					}
				}
				sample = scraped
			}
			v, err := srv.Push(sample)
			if err != nil {
				log.Printf("push: %v", err)
				feedFault.Store(fmt.Errorf("feed stopped: push: %v", err))
				return
			}
			if sup != nil {
				sup.ObserveVerdict(v)
			}
			if v != nil {
				switch {
				case v.Health == detect.HealthSkipped:
					log.Printf("SKIPPED round: window [%d, %d) lost to collector faults", v.Start, v.Start+v.Size)
				case v.Abnormal:
					truth := ""
					if labels != nil && tickAbnormal(labels, v.Start, v.Size) {
						truth = " (matches injected anomaly)"
					}
					degraded := ""
					if v.Health == detect.HealthDegraded {
						degraded = fmt.Sprintf(" [degraded: %d gap cells]", v.GapCells)
					}
					log.Printf("ABNORMAL verdict: window [%d, %d) db=%d%s%s",
						v.Start, v.Start+v.Size, v.AbnormalDB, truth, degraded)
				}
			}
			time.Sleep(interval)
		}
		h := online.Health()
		log.Printf("replay finished: %d gap cells, %d missed ticks, %d degraded verdicts, %d skipped rounds, %d deactivations, %d reactivations",
			h.GapCells, h.MissedTicks, h.DegradedVerdicts, h.SkippedRounds, h.Deactivations, h.Reactivations)
	}()

	// Real serving timeouts: a stuck or malicious client cannot pin a
	// connection open forever (the zero-value http.Server would let it).
	handler := srv.Handler()
	if repl != nil {
		// Replication rides on the API listener: standbys fetch the WAL
		// from /replicate/, everything else stays on the server mux.
		outer := http.NewServeMux()
		outer.Handle("/replicate/", repl.Handler())
		outer.Handle("/", handler)
		handler = outer
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	shutdownDone := make(chan struct{})
	go func() {
		// Graceful shutdown: stop the feeder, drain in-flight API
		// responses with a deadline, then flush the final snapshot so the
		// next boot resumes exactly here.
		defer close(shutdownDone)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
		sig := <-sigc
		log.Printf("received %v: draining and flushing durable state", sig)
		close(stop)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			log.Printf("feeder did not drain in time")
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if expSrv != nil {
			if err := expSrv.Shutdown(drainCtx); err != nil {
				log.Printf("exporter shutdown: %v", err)
			}
		}
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if sup != nil {
			// Cancel any in-flight search and join its goroutine before the
			// final flush so the snapshot reflects a settled judge.
			sup.Stop()
		}
		if pers != nil {
			if err := pers.Flush(online); err != nil {
				log.Printf("flush: %v", err)
			}
		}
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("close: %v", err)
			}
		}
	}()

	log.Printf("listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("dbcatcherd: %v", err)
	}
	<-shutdownDone
}

// loadTrace reads a -trace file and checks it fits the detector: the full
// 14-KPI vector and at least the two databases correlation needs.
func loadTrace(path string) (*timeseries.UnitSeries, error) {
	series, err := tracefile.ReadFile(path, "trace")
	if err != nil {
		return nil, err
	}
	if series.KPIs != kpi.Count {
		return nil, fmt.Errorf("trace %s carries %d KPIs, want %d", path, series.KPIs, kpi.Count)
	}
	if series.Databases < 2 {
		return nil, fmt.Errorf("trace %s carries %d databases; correlation needs at least 2", path, series.Databases)
	}
	if series.Len() == 0 {
		return nil, fmt.Errorf("trace %s is empty", path)
	}
	return series, nil
}

// parseFleetTargets parses the -fleet-scrape-targets spec: unit groups
// separated by ';', each group either one exporter base URL (expanded to
// the per-database /db/N/kpis targets, like self-scrape) or a
// comma-separated list of exactly dbs URLs in database order. The group
// count must match -units — a fleet scraping fewer exporters than it has
// judges is a misconfiguration, not a default.
func parseFleetTargets(spec string, units, dbs int) ([][]string, error) {
	groups := strings.Split(spec, ";")
	if len(groups) != units {
		return nil, fmt.Errorf("-fleet-scrape-targets lists %d unit groups for %d units", len(groups), units)
	}
	out := make([][]string, len(groups))
	for i, g := range groups {
		list := splitTargets(g)
		switch len(list) {
		case 0:
			return nil, fmt.Errorf("-fleet-scrape-targets unit %d is empty", i)
		case 1:
			out[i] = scrape.SelfTargets(strings.TrimRight(list[0], "/"), dbs)
		case dbs:
			out[i] = list
		default:
			return nil, fmt.Errorf("-fleet-scrape-targets unit %d lists %d targets; want one base URL or exactly %d", i, len(list), dbs)
		}
	}
	return out, nil
}

// splitTargets parses the -scrape-targets list (nil when empty).
func splitTargets(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// applyScrapeFaults parses and installs the -scrape-fault script:
// "db:mode[:count]" entries separated by commas, count 0 or omitted
// meaning until the process exits.
func applyScrapeFaults(exp *scrape.Exporter, spec string, dbs int) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 2 && len(fields) != 3 {
			return fmt.Errorf("bad scrape fault %q (want db:mode[:count])", part)
		}
		db, err := strconv.Atoi(fields[0])
		if err != nil || db < 0 || db >= dbs {
			return fmt.Errorf("bad scrape fault %q: database %q out of %d", part, fields[0], dbs)
		}
		mode, err := scrape.ParseFaultMode(fields[1])
		if err != nil {
			return fmt.Errorf("bad scrape fault %q: %v", part, err)
		}
		count := 0
		if len(fields) == 3 {
			if count, err = strconv.Atoi(fields[2]); err != nil || count < 0 {
				return fmt.Errorf("bad scrape fault %q: count %q", part, fields[2])
			}
		}
		if err := exp.SetFault(db, scrape.Fault{Mode: mode, Count: count}); err != nil {
			return err
		}
	}
	return nil
}

func tickAbnormal(l *anomaly.Labels, start, size int) bool {
	for t := start; t < start+size && t < len(l.Point); t++ {
		if l.Point[t] {
			return true
		}
	}
	return false
}

// parseSilences parses "db:start:length[,db:start:length...]". Every field
// is a strict non-negative decimal: the previous fmt.Sscanf("%d:%d:%d")
// parser accepted trailing garbage ("1:2:3junk" parsed clean), so a typo'd
// spec silently installed a different outage than the operator asked for.
func parseSilences(s string) ([]workload.Silence, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []workload.Silence
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad silence %q (want db:start:length)", part)
		}
		vals := make([]int, 3)
		for i, f := range fields {
			v, err := parseCount(f)
			if err != nil {
				return nil, fmt.Errorf("bad silence %q: %v", part, err)
			}
			vals[i] = v
		}
		out = append(out, workload.Silence{DB: vals[0], Start: vals[1], Length: vals[2]})
	}
	return out, nil
}

// parseCount parses a strict non-negative decimal flag field: ASCII digits
// only — no sign, no whitespace, no trailing garbage.
func parseCount(f string) (int, error) {
	if f == "" {
		return 0, fmt.Errorf("empty field")
	}
	for i := 0; i < len(f); i++ {
		if f[i] < '0' || f[i] > '9' {
			return 0, fmt.Errorf("field %q is not a non-negative integer", f)
		}
	}
	v, err := strconv.Atoi(f)
	if err != nil {
		return 0, fmt.Errorf("field %q out of range", f)
	}
	return v, nil
}

func parseProfile(s string) (workload.Profile, error) {
	switch strings.ToLower(s) {
	case "tencent-irregular":
		return workload.TencentIrregular, nil
	case "tencent-periodic":
		return workload.TencentPeriodic, nil
	case "sysbench-i":
		return workload.SysbenchI, nil
	case "sysbench-ii":
		return workload.SysbenchII, nil
	case "tpcc-i":
		return workload.TPCCI, nil
	case "tpcc-ii":
		return workload.TPCCII, nil
	default:
		return 0, fmt.Errorf("unknown profile %q", s)
	}
}
