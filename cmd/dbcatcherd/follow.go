// Follower role: with -follow the daemon is a warm standby. It does not
// simulate, scrape, or judge anything; it tails the primary's WAL over
// HTTP into the local -data-dir, byte-identical, and serves only the
// probe/role surface. Promotion — manual POST /api/promote, or automatic
// after -promote-after without primary contact — adopts the next fencing
// epoch durably and returns control to main, which falls through into the
// normal startup path: the recovered mirror rehydrates the detector and
// the feed resumes from the last durable tick, exactly like a restart.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dbcatcher/internal/replicate"
	"dbcatcher/internal/store"
)

// followerConfig carries the follower role's wiring. The zero durations
// fall back to the tailer's defaults.
type followerConfig struct {
	primary      string        // primary base URL to tail
	dir          string        // local mirror directory (= -data-dir)
	addr         string        // probe/API listen address ("" = none)
	poll         time.Duration // tail poll interval
	budget       time.Duration // staleness budget behind /readyz
	promoteAfter time.Duration // auto-promote threshold (0 = manual only)
	seed         uint64
}

// errNeverContacted blocks auto-promotion of a follower that has never
// reached its primary: its mirror may be empty or arbitrarily old, and
// promoting it would resurrect a stale epoch instead of continuing one.
var errNeverContacted = errors.New("no primary contact yet")

// runFollower tails the primary until promotion or shutdown. It returns
// true when the node was promoted (the mirror now durably owns the next
// epoch; the caller proceeds into normal primary startup) and false on a
// clean SIGTERM/SIGINT exit as a standby.
func runFollower(cfg followerConfig, opts store.Options) bool {
	tl, err := replicate.NewTailer(replicate.Config{
		Primary:         cfg.primary,
		Dir:             cfg.dir,
		Poll:            cfg.poll,
		StalenessBudget: cfg.budget,
		Seed:            cfg.seed,
	})
	if err != nil {
		log.Fatalf("dbcatcherd: follower: %v", err)
	}

	manual := make(chan struct{}, 1)
	var promoting atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeProbeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s := tl.Status()
		switch {
		case s.LastContact.IsZero():
			writeProbeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
				"status": "unready", "reason": errNeverContacted.Error(),
			})
		case s.Stale:
			writeProbeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
				"status": "unready",
				"reason": fmt.Sprintf("replication stale: last contact %s ago (budget %s)",
					time.Since(s.LastContact).Round(time.Millisecond), tl.StalenessBudget()),
			})
		case !s.CaughtUp:
			writeProbeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
				"status": "unready",
				"reason": fmt.Sprintf("replaying: applied %d of %d", s.Applied, s.PrimaryLastSeq),
			})
		default:
			writeProbeJSON(w, http.StatusOK, map[string]interface{}{"status": "ready"})
		}
	})
	mux.HandleFunc("/api/status", func(w http.ResponseWriter, r *http.Request) {
		writeProbeJSON(w, http.StatusOK, map[string]interface{}{
			"role": followerRoleBlock(tl, cfg.primary),
		})
	})
	mux.HandleFunc("/api/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if !promoting.CompareAndSwap(false, true) {
			writeProbeJSON(w, http.StatusConflict, map[string]interface{}{"error": "promotion already in progress"})
			return
		}
		select {
		case manual <- struct{}{}:
		default:
		}
		writeProbeJSON(w, http.StatusAccepted, map[string]interface{}{"status": "promotion requested"})
	})

	var httpSrv *http.Server
	if cfg.addr != "" {
		httpSrv = &http.Server{
			Addr:              cfg.addr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       15 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			log.Printf("follower probes listening on %s (tailing %s)", cfg.addr, cfg.primary)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("dbcatcherd: follower: %v", err)
			}
		}()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	promoted := followUntilPromotion(ctx, tl, manual, cfg.promoteAfter)
	cancel()

	if httpSrv != nil {
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("follower shutdown: %v", err)
		}
		cancelDrain()
	}
	if !promoted {
		log.Printf("follower draining: applied %d records, exiting as standby", tl.Status().Applied)
		return false
	}

	epoch, err := promoteMirror(cfg.dir, opts, cfg.primary, tl.Status().Epoch)
	if err != nil {
		log.Fatalf("dbcatcherd: promotion failed: %v", err)
	}
	log.Printf("promoted: mirror %s now owns epoch %d", cfg.dir, epoch)
	return true
}

// followUntilPromotion runs the tail loop until a promotion trigger fires
// — a manual request, or (with promoteAfter > 0) the primary silent past
// the threshold after having been reachable at least once. Returns false
// when ctx is cancelled first (clean standby shutdown).
func followUntilPromotion(ctx context.Context, tl *replicate.Tailer, manual <-chan struct{}, promoteAfter time.Duration) bool {
	runCtx, cancel := context.WithCancel(ctx)
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		tl.Run(runCtx)
	}()
	stopTail := func() {
		cancel()
		<-runDone
	}

	ticker := time.NewTicker(promoteCheckInterval(promoteAfter))
	defer ticker.Stop()
	warned := false
	for {
		select {
		case <-ctx.Done():
			stopTail()
			return false
		case <-manual:
			log.Printf("manual promotion requested")
			stopTail()
			return true
		case <-ticker.C:
			if promoteAfter <= 0 {
				continue
			}
			s := tl.Status()
			if s.LastContact.IsZero() {
				continue // never reached the primary; see errNeverContacted
			}
			silent := time.Since(s.LastContact)
			if silent <= promoteAfter {
				warned = false
				continue
			}
			if !warned {
				log.Printf("primary silent for %s (budget %s, %d consecutive failures)",
					silent.Round(time.Millisecond), promoteAfter, s.ConsecutiveFailures)
				warned = true
			}
			log.Printf("auto-promotion: missed-heartbeat budget exhausted")
			stopTail()
			return true
		}
	}
}

// promoteCheckInterval derives the auto-promotion poll cadence from the
// configured silence budget: a quarter of the budget, clamped between
// 1ms (time.NewTicker panics on a zero interval, which a sub-4ns
// -promote-after would otherwise truncate to) and 200ms.
func promoteCheckInterval(promoteAfter time.Duration) time.Duration {
	check := 200 * time.Millisecond
	if promoteAfter > 0 && promoteAfter/4 < check {
		check = promoteAfter / 4
		if check < time.Millisecond {
			check = time.Millisecond
		}
	}
	return check
}

// promoteMirror finalizes the takeover: adopt the next epoch durably in
// the mirror — strictly above both the mirrored log's epoch and the
// highest epoch the tailer ever saw the primary advertise — best-effort
// fence the old primary, and release the store so the normal startup
// path can reopen it. observed is the tailer's highest observed epoch.
// The single fence attempt here is only the fast path: the promoted
// daemon's epoch guard keeps retrying the contact in the background, so
// an old primary that survives a partition is still demoted on first
// reconnect instead of running as a second primary forever.
func promoteMirror(dir string, opts store.Options, primary string, observed uint64) (uint64, error) {
	st, _, epoch, err := replicate.Promote(dir, opts, observed)
	if err != nil {
		return 0, err
	}
	if err := st.Close(); err != nil {
		return 0, err
	}
	fenceCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := replicate.FenceOldPrimary(fenceCtx, nil, primary, epoch); err != nil {
		// Expected: promotion usually happens because the primary is gone.
		// A rejoining node is fenced by the epoch in the replicated log,
		// and the takeover's epoch guard retries this contact until the
		// demotion sticks.
		log.Printf("old primary not fenced yet (%v); the epoch guard keeps retrying", err)
	} else {
		log.Printf("old primary fenced at epoch %d", epoch)
	}
	return epoch, nil
}

// followerRoleBlock is the "role" document served while following.
func followerRoleBlock(tl *replicate.Tailer, primary string) map[string]interface{} {
	s := tl.Status()
	block := map[string]interface{}{
		"role":                "follower",
		"primary":             primary,
		"epoch":               s.Epoch,
		"applied":             s.Applied,
		"primaryLastSeq":      s.PrimaryLastSeq,
		"caughtUp":            s.CaughtUp,
		"stale":               s.Stale,
		"bytesBehind":         s.BytesBehind,
		"segmentsBehind":      s.SegmentsBehind,
		"consecutiveFailures": s.ConsecutiveFailures,
		"snapshotRestarts":    s.SnapshotRestarts,
	}
	if !s.LastContact.IsZero() {
		block["lastContactMsAgo"] = time.Since(s.LastContact).Milliseconds()
	}
	if s.LastError != "" {
		block["lastError"] = s.LastError
	}
	return block
}

// writeProbeJSON is the follower surface's tiny JSON writer (the full
// server package's middleware stack is not in play in this role).
func writeProbeJSON(w http.ResponseWriter, code int, v map[string]interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
