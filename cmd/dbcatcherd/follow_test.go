package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"dbcatcher/internal/replicate"
	"dbcatcher/internal/store"
)

// haPrimary opens a primary store with a few durable records and serves
// its replication surface.
func haPrimary(t *testing.T, epoch uint64, records int) (*store.Store, *httptest.Server) {
	t.Helper()
	st, rec, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.AdoptEpoch(rec.LatestEpoch()+epoch, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := st.AppendCounters(store.CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(replicate.NewServer(st).Handler())
	return st, srv
}

func followerTailer(t *testing.T, primary, dir string) *replicate.Tailer {
	t.Helper()
	tl, err := replicate.NewTailer(replicate.Config{
		Primary: primary, Dir: dir,
		Poll: 10 * time.Millisecond, StalenessBudget: 150 * time.Millisecond,
		Attempts: 1, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestFollowUntilPromotionManual(t *testing.T) {
	_, srv := haPrimary(t, 1, 5)
	defer srv.Close()
	dir := t.TempDir()
	tl := followerTailer(t, srv.URL, dir)

	manual := make(chan struct{}, 1)
	decided := make(chan bool, 1)
	go func() { decided <- followUntilPromotion(context.Background(), tl, manual, 0) }()

	deadline := time.Now().Add(5 * time.Second)
	for tl.Status().Applied < 6 { // 1 epoch record + 5 counters
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", tl.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	manual <- struct{}{}
	select {
	case promoted := <-decided:
		if !promoted {
			t.Fatal("manual trigger did not decide promotion")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("followUntilPromotion did not return after manual trigger")
	}

	// The takeover adopts the next epoch durably in the mirror.
	epoch, err := promoteMirror(dir, store.Options{Fsync: store.FsyncAlways}, srv.URL, tl.Status().Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	_, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.LatestEpoch(); got != 2 {
		t.Fatalf("durable epoch after promotion = %d, want 2", got)
	}
}

func TestFollowUntilPromotionAutoOnSilence(t *testing.T) {
	_, srv := haPrimary(t, 1, 3)
	dir := t.TempDir()
	tl := followerTailer(t, srv.URL, dir)

	manual := make(chan struct{}, 1)
	decided := make(chan bool, 1)
	go func() { decided <- followUntilPromotion(context.Background(), tl, manual, 300*time.Millisecond) }()

	deadline := time.Now().Add(5 * time.Second)
	for tl.Status().Applied < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", tl.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Kill the primary: the missed-heartbeat budget fills and the loop
	// decides to promote on its own.
	srv.Close()
	select {
	case promoted := <-decided:
		if !promoted {
			t.Fatal("silence did not decide promotion")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("auto-promotion never fired")
	}
}

func TestFollowUntilPromotionCleanShutdown(t *testing.T) {
	_, srv := haPrimary(t, 1, 2)
	defer srv.Close()
	tl := followerTailer(t, srv.URL, t.TempDir())

	ctx, cancel := context.WithCancel(context.Background())
	manual := make(chan struct{}, 1)
	decided := make(chan bool, 1)
	go func() { decided <- followUntilPromotion(ctx, tl, manual, 0) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case promoted := <-decided:
		if promoted {
			t.Fatal("shutdown must not promote")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("followUntilPromotion did not exit on cancel")
	}
}

func TestPromoteCheckIntervalClamp(t *testing.T) {
	cases := []struct {
		after time.Duration
		want  time.Duration
	}{
		{0, 200 * time.Millisecond},               // manual-only: default cadence
		{10 * time.Second, 200 * time.Millisecond}, // long budgets stay at default
		{100 * time.Millisecond, 25 * time.Millisecond},
		{3, time.Millisecond}, // 3ns/4 truncates to 0: clamp, don't panic NewTicker
		{1, time.Millisecond},
	}
	for _, c := range cases {
		if got := promoteCheckInterval(c.after); got != c.want {
			t.Fatalf("promoteCheckInterval(%v) = %v, want %v", c.after, got, c.want)
		}
	}
}

func TestAutoPromotionRequiresContact(t *testing.T) {
	// A follower that has never reached any primary must not auto-promote,
	// no matter how long it waits: its mirror could be empty.
	tl := followerTailer(t, "http://127.0.0.1:1", t.TempDir())
	ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	defer cancel()
	manual := make(chan struct{}, 1)
	if promoted := followUntilPromotion(ctx, tl, manual, 100*time.Millisecond); promoted {
		t.Fatal("promoted with zero primary contact")
	}
}
