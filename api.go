// Package dbcatcher is a Go reproduction of "DBCatcher: A Cloud Database
// Online Anomaly Detection System based on Indicator Correlation" (Zhang
// et al., ICDE 2023).
//
// DBCatcher watches the key performance indicators (KPIs) of every
// database in a cloud-database unit and exploits the Unit KPI Correlation
// (UKPIC) phenomenon: in a healthy unit the same KPI trends together
// across databases, so a database whose trends decorrelate from its peers
// is likely abnormal. Three techniques make this practical: a
// delay-tolerant correlation measure (KCD), a flexible observation window
// that absorbs benign temporal fluctuations, and a genetic-algorithm
// threshold learner driven by DBA feedback.
//
// This root package is the public facade. Construct a Detector for online
// (streaming) detection, or use DetectSeries for offline batch detection;
// LearnThresholds fits the judgment thresholds from labelled data. The
// internal packages provide the substrates (unit simulator, workload
// models, anomaly injectors, baseline detectors, experiment harness); the
// cmd/ binaries and examples/ show them in use.
package dbcatcher

import (
	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// Re-exported domain types. The aliases keep the full method sets usable
// by package consumers.
type (
	// KPI identifies one of the 14 monitored indicators (Table II).
	KPI = kpi.KPI
	// Series is a uniformly sampled univariate KPI stream.
	Series = timeseries.Series
	// UnitSeries is the KPI x database multivariate layout of one unit.
	UnitSeries = timeseries.UnitSeries
	// Thresholds is the judgment parameter set (α_i, θ, tolerance).
	Thresholds = window.Thresholds
	// FlexConfig parameterizes the flexible observation window.
	FlexConfig = window.FlexConfig
	// State is a database state: Healthy, Observable, or Abnormal.
	State = window.State
	// Verdict is one completed judgment round.
	Verdict = detect.Verdict
	// OnlineVerdict is a verdict with streaming bookkeeping.
	OnlineVerdict = monitor.Verdict
	// Labels is ground truth for labelled series.
	Labels = anomaly.Labels
	// UnitConfig configures the built-in cloud-database unit simulator.
	UnitConfig = cluster.Config
	// Unit is a simulated cloud-database unit.
	Unit = cluster.Unit
	// WorkloadProfile selects a demand model (Tencent/Sysbench/TPCC,
	// irregular or periodic).
	WorkloadProfile = workload.Profile
	// DatasetConfig configures labelled multi-unit dataset generation.
	DatasetConfig = dataset.Config
	// Dataset is a labelled multi-unit dataset.
	Dataset = dataset.Dataset
)

// Database states.
const (
	Healthy    = window.Healthy
	Observable = window.Observable
	Abnormal   = window.Abnormal
)

// KPICount is the number of monitored indicators (the paper's Q = 14).
const KPICount = kpi.Count

// Config configures a Detector.
type Config struct {
	// Databases is the number of databases in the monitored unit.
	Databases int
	// Thresholds is the judgment parameter set; zero value uses defaults
	// (refine with LearnThresholds once labelled records exist).
	Thresholds Thresholds
	// Flex configures the flexible window; zero value uses W=20, W_M=60.
	Flex FlexConfig
	// KCD overrides the correlation options; the zero value uses the
	// detection defaults (n/2 scan capped at ±4 points) unless
	// UseCustomKCD is set.
	KCD correlate.Options
	// UseCustomKCD forces the KCD field to be honoured even when it is
	// the zero configuration (which would otherwise read as "unset").
	UseCustomKCD bool
	// Workers bounds the per-window correlation fan-out: 0 uses
	// GOMAXPROCS, 1 forces the serial path. Verdicts are identical at any
	// setting; set 1 when the caller already runs many units in parallel.
	Workers int
	// Active marks participating databases; nil means all.
	Active []bool
	// Streaming opts into the incremental streaming KCD tier: per-pair
	// rolling statistics updated in O(1) per tick instead of an O(W)
	// window recompute per round. Explicit fast-math opt-in — scores can
	// differ from the exact path within a documented ~1e-9 bound (see
	// correlate.Stream), so verdicts are expected but not guaranteed to be
	// identical; windows with collector gaps still score exactly.
	Streaming bool
}

// thresholdsFor resolves the configured thresholds for a q-KPI unit,
// falling back to the defaults when none were set.
func thresholdsFor(t Thresholds, q int) Thresholds {
	if t.Alpha == nil {
		return window.DefaultThresholds(q)
	}
	return t
}

// kcdFor maps the facade's KCD override to the detection layer's pointer
// sentinel: nil selects the detection defaults.
func kcdFor(cfg Config) *correlate.Options {
	if cfg.UseCustomKCD || !cfg.KCD.IsZero() {
		o := cfg.KCD
		return &o
	}
	return nil
}

// detectConfig lowers the facade configuration to the detection layer's
// for a q-KPI unit.
func detectConfig(cfg Config, q int) detect.Config {
	return detect.Config{
		Thresholds: thresholdsFor(cfg.Thresholds, q),
		Flex:       cfg.Flex,
		KCDOptions: kcdFor(cfg),
		Workers:    cfg.Workers,
		Active:     cfg.Active,
		Streaming:  cfg.Streaming,
	}
}

// Detector is the online streaming detector: push one KPI sample per
// 5-second tick, receive a verdict whenever a judgment round completes.
type Detector struct {
	online *monitor.Online
}

// NewDetector builds a streaming detector for a unit with the given
// number of databases.
func NewDetector(cfg Config) (*Detector, error) {
	if cfg.Databases == 0 {
		cfg.Databases = 5
	}
	online, err := monitor.NewOnline(detectConfig(cfg, KPICount), KPICount, cfg.Databases)
	if err != nil {
		return nil, err
	}
	return &Detector{online: online}, nil
}

// Push ingests one collection tick: sample[k][d] is KPI k's value on
// database d. It returns a verdict when a judgment round completes, nil
// otherwise.
func (d *Detector) Push(sample [][]float64) (*OnlineVerdict, error) {
	return d.online.Push(sample)
}

// Thresholds returns the active judgment thresholds.
func (d *Detector) Thresholds() Thresholds { return d.online.Thresholds() }

// SetThresholds swaps the judgment thresholds (after relearning).
func (d *Detector) SetThresholds(t Thresholds) error { return d.online.SetThresholds(t) }

// DetectSeries runs offline batch detection over a complete unit series
// and returns the verdict sequence.
func DetectSeries(u *UnitSeries, cfg Config) ([]Verdict, error) {
	verdicts, _, err := detect.Run(u, detectConfig(cfg, u.KPIs))
	return verdicts, err
}

// KCD computes the Key Correlation Distance between two equal-length KPI
// windows with the detection-default options.
func KCD(x, y []float64) float64 {
	return correlate.KCD(x, y, correlate.DetectionOptions())
}

// LabelledUnit pairs a unit's series with DBA-marked ground truth for
// threshold learning.
type LabelledUnit struct {
	Series *UnitSeries
	Labels *Labels
}

// LearnThresholds runs the adaptive threshold learning policy (genetic
// algorithm, Algorithm 2) over labelled units and returns the fitted
// thresholds with their training F-Measure.
func LearnThresholds(units []LabelledUnit, flex FlexConfig, seed uint64) (Thresholds, float64, error) {
	samples := make([]thresholds.Sample, 0, len(units))
	q := KPICount
	for _, u := range units {
		q = u.Series.KPIs
		samples = append(samples, thresholds.Sample{
			Provider: detect.NewCachedProvider(detect.NewProvider(u.Series, nil, nil)),
			Labels:   u.Labels,
		})
	}
	learner := feedback.Learner{Searcher: thresholds.GA{Seed: seed}, Flex: flex}
	return learner.Relearn(q, samples)
}

// SimulateUnit generates a synthetic cloud-database unit with the built-in
// simulator (the substitution for production traces; see DESIGN.md).
func SimulateUnit(cfg UnitConfig) (*Unit, error) { return cluster.Simulate(cfg) }

// GenerateDataset builds a labelled multi-unit dataset in the shape of the
// paper's Table III.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// InjectAnomalies applies an anomaly schedule to a simulated unit and
// returns ground-truth labels.
func InjectAnomalies(u *Unit, events []anomaly.Event, seed uint64) (*Labels, error) {
	return anomaly.Inject(u, events, rngFor(seed))
}

// AnomalyEvent re-exports the anomaly episode description.
type AnomalyEvent = anomaly.Event

// Anomaly types.
const (
	Spike             = anomaly.Spike
	LevelShift        = anomaly.LevelShift
	ConceptDrift      = anomaly.ConceptDrift
	Stall             = anomaly.Stall
	LoadBalanceDefect = anomaly.LoadBalanceDefect
	Fragmentation     = anomaly.Fragmentation
	ResourceHog       = anomaly.ResourceHog
)

// Workload profiles.
const (
	TencentIrregular = workload.TencentIrregular
	TencentPeriodic  = workload.TencentPeriodic
	SysbenchI        = workload.SysbenchI
	SysbenchII       = workload.SysbenchII
	TPCCI            = workload.TPCCI
	TPCCII           = workload.TPCCII
)

// rngFor seeds the shared deterministic generator.
func rngFor(seed uint64) *mathx.RNG { return mathx.NewRNG(seed) }

// Explanation attributes a judgment to indicators (root-cause hints).
type Explanation = detect.Explanation

// ExplainWindow judges one window of a unit series and returns the
// per-database indicator attribution: which KPIs deviated and how far.
// This is the root-cause-analysis direction of the paper's future work.
func ExplainWindow(u *UnitSeries, cfg Config, start, size int) ([]*Explanation, error) {
	dcfg := detectConfig(cfg, u.KPIs)
	return detect.Explain(detect.NewEngineProvider(u, dcfg.Engine(), cfg.Active), dcfg, start, size)
}
