package dbcatcher

import (
	"testing"

	"dbcatcher/internal/dataset"
)

// TestDetectSeriesWorkersDeterministic pins the facade-level guarantee:
// verdicts are bit-identical at any Workers setting.
func TestDetectSeriesWorkersDeterministic(t *testing.T) {
	u, err := SimulateUnit(UnitConfig{Name: "par", Ticks: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = InjectAnomalies(u, []AnomalyEvent{
		{Type: Stall, DB: 1, Start: 150, Length: 40, Magnitude: 0.9},
	}, 5); err != nil {
		t.Fatal(err)
	}
	ref, err := DetectSeries(u.Series, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no verdicts")
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := DetectSeries(u.Series, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d verdicts, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Start != ref[i].Start || got[i].Size != ref[i].Size ||
				got[i].Abnormal != ref[i].Abnormal || got[i].AbnormalDB != ref[i].AbnormalDB {
				t.Fatalf("workers=%d: verdict %d = %+v, want %+v", workers, i, got[i], ref[i])
			}
			for d := range ref[i].States {
				if got[i].States[d] != ref[i].States[d] {
					t.Fatalf("workers=%d: verdict %d state[%d] differs", workers, i, d)
				}
			}
		}
	}
}

// TestGenerateDatasetConcurrencyDeterministic: the per-unit RNGs are split
// off before the fan-out, so generation is bit-identical at any
// concurrency.
func TestGenerateDatasetConcurrencyDeterministic(t *testing.T) {
	base := DatasetConfig{Family: dataset.Sysbench, Units: 6, Ticks: 200, Seed: 77}
	serialCfg := base
	serialCfg.Concurrency = 1
	serial, err := GenerateDataset(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallelCfg := base
	parallelCfg.Concurrency = 4
	parallel, err := GenerateDataset(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Units) != len(parallel.Units) {
		t.Fatalf("unit counts differ: %d vs %d", len(serial.Units), len(parallel.Units))
	}
	for i := range serial.Units {
		su, pu := serial.Units[i], parallel.Units[i]
		if su.Unit.Config.Name != pu.Unit.Config.Name || su.Profile != pu.Profile {
			t.Fatalf("unit %d metadata differs", i)
		}
		if su.Labels.AbnormalCount() != pu.Labels.AbnormalCount() {
			t.Fatalf("unit %d labels differ", i)
		}
		for k := 0; k < su.Unit.Series.KPIs; k++ {
			for d := 0; d < su.Unit.Series.Databases; d++ {
				sv := su.Unit.Series.Data[k][d].Values
				pv := pu.Unit.Series.Data[k][d].Values
				for tk := range sv {
					if sv[tk] != pv[tk] {
						t.Fatalf("unit %d KPI %d db %d tick %d: %v vs %v",
							i, k, d, tk, sv[tk], pv[tk])
					}
				}
			}
		}
	}
}
